//! The optimizer's cost model.
//!
//! Costs are computed from the **estimated** side of the dual statistics and
//! the **claimed** tuning of each physical expression, so the model is
//! exactly as misinformed as SCOPE's: "the estimated costs from the SCOPE
//! optimizer (whose reliability is well known to be lacking)" (§2.2). The
//! runtime simulator independently derives ground truth from the actual
//! side; nothing in this module touches it.

use crate::memo::{ExchangeSpec, PreLocal};
use scope_ir::physical::{Partitioning, PhysicalOp, PhysicalTuning};
use scope_ir::stats::NodeStats;

/// Cost model constants (abstract cost units; 1 unit ≈ 1 byte moved or a
/// comparable amount of CPU work).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-byte cost of reading base data.
    pub read_byte: f64,
    /// Per-byte cost of writing final outputs.
    pub write_byte: f64,
    /// Per-byte cost of moving data through an exchange.
    pub shuffle_byte: f64,
    /// Extra per-row cost when a range exchange must sort its runs.
    pub sort_row_log: f64,
    /// Per-row CPU unit (scaled by operator weights below).
    pub cpu_row: f64,
    /// Hash-join build-side per-row weight.
    pub hash_build: f64,
    /// Hash-join probe-side per-row weight.
    pub hash_probe: f64,
    /// Merge-join per-row weight (both sides).
    pub merge_row: f64,
    /// Nested-loop per-pair weight.
    pub nl_pair: f64,
    /// Hash-aggregation per-input-row weight.
    pub hash_agg_row: f64,
    /// Stream-aggregation per-input-row weight (cheaper, needs order).
    pub stream_agg_row: f64,
    /// Window function per-row weight.
    pub window_row: f64,
    /// Process (UDF) per-row weight, multiplied by the UDF's cpu factor.
    pub process_row: f64,
    /// Claimed IO discount of compressed exchanges.
    pub compression_io: f64,
    /// Claimed CPU surcharge of compressed exchanges (per byte).
    pub compression_cpu: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            read_byte: 1.0,
            write_byte: 1.5,
            shuffle_byte: 2.0,
            sort_row_log: 0.05,
            cpu_row: 0.2,
            hash_build: 1.5,
            hash_probe: 1.0,
            merge_row: 0.7,
            nl_pair: 0.01,
            hash_agg_row: 1.2,
            stream_agg_row: 0.6,
            window_row: 1.5,
            process_row: 2.0,
            compression_io: 0.8,
            compression_cpu: 0.15,
        }
    }
}

impl CostModel {
    /// Estimated cost of one operator instance, excluding its input
    /// exchanges and children.
    #[must_use]
    pub fn local_cost(
        &self,
        op: &PhysicalOp,
        out: &NodeStats,
        children: &[NodeStats],
        tuning: &PhysicalTuning,
    ) -> f64 {
        let out_rows = out.rows.estimated.max(0.0);
        let out_bytes = out.estimated_bytes().max(0.0);
        let in_rows = |i: usize| children.get(i).map_or(0.0, |c| c.rows.estimated.max(0.0));
        let cpu = |units: f64| units * self.cpu_row * tuning.cpu_mult;
        let io = |bytes: f64| bytes * tuning.io_mult;
        match op {
            PhysicalOp::TableScan { .. } => io(out_bytes * self.read_byte),
            PhysicalOp::FilterExec { predicate } => {
                cpu(in_rows(0) * predicate.cpu_weight().max(0.1))
            }
            PhysicalOp::ProjectExec { exprs } => {
                let weight: f64 = exprs
                    .iter()
                    .map(|(e, _)| e.cpu_weight())
                    .sum::<f64>()
                    .max(0.1);
                cpu(in_rows(0) * weight * 0.5)
            }
            PhysicalOp::HashJoin { .. } => {
                cpu(in_rows(1) * self.hash_build + in_rows(0) * self.hash_probe + out_rows * 0.3)
            }
            PhysicalOp::MergeJoin { .. } => {
                cpu((in_rows(0) + in_rows(1)) * self.merge_row + out_rows * 0.3)
            }
            PhysicalOp::BroadcastJoin { .. } => {
                // Replication cost is carried by the broadcast exchange; the
                // local probe is hash-join-like with a small build.
                cpu(in_rows(1) * self.hash_build + in_rows(0) * self.hash_probe + out_rows * 0.3)
            }
            PhysicalOp::HashAggregate { .. } => {
                cpu(in_rows(0) * self.hash_agg_row + out_rows * 0.5)
            }
            PhysicalOp::StreamAggregate { .. } => {
                cpu(in_rows(0) * self.stream_agg_row + out_rows * 0.3)
            }
            PhysicalOp::SortExec { .. } => {
                let n = in_rows(0).max(2.0);
                cpu(n * n.log2() * self.sort_row_log / self.cpu_row)
            }
            PhysicalOp::TopNExec { .. } => cpu(in_rows(0) * 0.4),
            PhysicalOp::WindowExec { .. } => cpu(in_rows(0) * self.window_row),
            PhysicalOp::ProcessExec { cpu_factor, .. } => {
                cpu(in_rows(0) * self.process_row * cpu_factor)
            }
            PhysicalOp::UnionAllExec => 0.0,
            PhysicalOp::Exchange { .. } => 0.0, // costed via exchange_cost
            PhysicalOp::OutputExec { .. } => io(out_bytes * self.write_byte),
        }
    }

    /// Estimated cost of moving `input` through an exchange.
    #[must_use]
    pub fn exchange_cost(&self, spec: &ExchangeSpec, input: &NodeStats) -> f64 {
        let rows = input.rows.estimated.max(0.0);
        let bytes = input.estimated_bytes().max(0.0);
        let replication = match &spec.scheme {
            // Broadcast replicates the input to every consumer partition.
            Partitioning::Broadcast => 8.0,
            _ => 1.0,
        };
        let mut cost = bytes * self.shuffle_byte * replication;
        if spec.compressed {
            cost = cost * self.compression_io + bytes * self.compression_cpu;
        }
        if spec.sorted {
            let n = rows.max(2.0);
            cost += n * n.log2() * self.sort_row_log;
        }
        cost
    }

    /// Estimated cost of a producer-side pre-reduction (partial aggregation
    /// or local top-k) plus the reduced row count that flows into the
    /// exchange above it.
    #[must_use]
    pub fn pre_local_cost_and_rows(
        &self,
        pre: PreLocal,
        input: &NodeStats,
        out: &NodeStats,
    ) -> (f64, NodeStats) {
        match pre {
            PreLocal::PartialAgg => {
                let reduced = NodeStats {
                    rows: scope_ir::stats::DualStats::new(
                        partial_rows(input.rows.actual, out.rows.actual),
                        partial_rows(input.rows.estimated, out.rows.estimated),
                    ),
                    avg_row_len: out.avg_row_len,
                    distinct: out.distinct,
                };
                let cost = input.rows.estimated.max(0.0) * self.hash_agg_row * self.cpu_row;
                (cost, reduced)
            }
            PreLocal::LocalTopK(k) => {
                let cap = (k * 32) as f64;
                let reduced = NodeStats {
                    rows: scope_ir::stats::DualStats::new(
                        input.rows.actual.min(cap),
                        input.rows.estimated.min(cap),
                    ),
                    avg_row_len: input.avg_row_len,
                    distinct: input.distinct,
                };
                let cost = input.rows.estimated.max(0.0) * 0.4 * self.cpu_row;
                (cost, reduced)
            }
        }
    }
}

/// Rows surviving a local partial aggregation: each of ~16 producer tasks
/// emits at most the full group count.
#[must_use]
pub fn partial_rows(input_rows: f64, groups: f64) -> f64 {
    input_rows.min((groups * 16.0).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::ScalarExpr;
    use scope_ir::stats::DualStats;

    fn stats(rows: f64, len: f64) -> NodeStats {
        NodeStats {
            rows: DualStats::exact(rows),
            avg_row_len: len,
            distinct: DualStats::exact((rows / 10.0).max(1.0)),
        }
    }

    #[test]
    fn scan_cost_is_io_bound() {
        let m = CostModel::default();
        let out = stats(1000.0, 100.0);
        let c = m.local_cost(
            &PhysicalOp::TableScan {
                table: "t".into(),
                variant: scope_ir::ScanVariant::Sequential,
            },
            &out,
            &[],
            &PhysicalTuning::IDENTITY,
        );
        assert!((c - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn tuning_scales_cost_dimensions() {
        let m = CostModel::default();
        let out = stats(1000.0, 100.0);
        let scan = PhysicalOp::TableScan {
            table: "t".into(),
            variant: scope_ir::ScanVariant::Sequential,
        };
        let base = m.local_cost(&scan, &out, &[], &PhysicalTuning::IDENTITY);
        let tuned = m.local_cost(
            &scan,
            &out,
            &[],
            &PhysicalTuning {
                io_mult: 0.5,
                ..PhysicalTuning::IDENTITY
            },
        );
        assert!((tuned - base * 0.5).abs() < 1e-6);
        // CPU-bound op scales with cpu_mult instead.
        let filt = PhysicalOp::FilterExec {
            predicate: ScalarExpr::lit_int(1),
        };
        let fb = m.local_cost(
            &filt,
            &out,
            &[stats(1000.0, 100.0)],
            &PhysicalTuning::IDENTITY,
        );
        let ft = m.local_cost(
            &filt,
            &out,
            &[stats(1000.0, 100.0)],
            &PhysicalTuning {
                cpu_mult: 2.0,
                ..PhysicalTuning::IDENTITY
            },
        );
        assert!((ft - fb * 2.0).abs() < 1e-6);
    }

    #[test]
    fn broadcast_exchange_costs_more_than_hash() {
        let m = CostModel::default();
        let input = stats(10_000.0, 50.0);
        let hash = m.exchange_cost(
            &ExchangeSpec {
                scheme: Partitioning::Hash {
                    columns: vec![0],
                    partitions: 16,
                },
                sorted: false,
                compressed: false,
            },
            &input,
        );
        let bcast = m.exchange_cost(
            &ExchangeSpec {
                scheme: Partitioning::Broadcast,
                sorted: false,
                compressed: false,
            },
            &input,
        );
        assert!(bcast > hash * 4.0);
    }

    #[test]
    fn compression_discounts_io() {
        let m = CostModel::default();
        let input = stats(10_000.0, 50.0);
        let spec = |compressed| ExchangeSpec {
            scheme: Partitioning::Hash {
                columns: vec![0],
                partitions: 16,
            },
            sorted: false,
            compressed,
        };
        assert!(m.exchange_cost(&spec(true), &input) < m.exchange_cost(&spec(false), &input));
    }

    #[test]
    fn sorted_exchange_adds_sort_cost() {
        let m = CostModel::default();
        let input = stats(10_000.0, 50.0);
        let plain = ExchangeSpec {
            scheme: Partitioning::Range {
                columns: vec![0],
                partitions: 16,
            },
            sorted: false,
            compressed: false,
        };
        let sorted = ExchangeSpec {
            sorted: true,
            ..plain.clone()
        };
        assert!(m.exchange_cost(&sorted, &input) > m.exchange_cost(&plain, &input));
    }

    #[test]
    fn partial_agg_reduces_rows_flowing_into_exchange() {
        let m = CostModel::default();
        let input = stats(1_000_000.0, 40.0);
        let out = stats(100.0, 20.0);
        let (cost, reduced) = m.pre_local_cost_and_rows(PreLocal::PartialAgg, &input, &out);
        assert!(cost > 0.0);
        assert!(reduced.rows.estimated < input.rows.estimated / 100.0);
        assert!((reduced.rows.estimated - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn local_topk_caps_rows() {
        let m = CostModel::default();
        let input = stats(1_000_000.0, 40.0);
        let out = stats(10.0, 40.0);
        let (_, reduced) = m.pre_local_cost_and_rows(PreLocal::LocalTopK(10), &input, &out);
        assert!((reduced.rows.estimated - 320.0).abs() < 1e-6);
    }

    #[test]
    fn stream_agg_cheaper_than_hash_agg_locally() {
        let m = CostModel::default();
        let input = [stats(100_000.0, 40.0)];
        let out = stats(100.0, 20.0);
        let hash = m.local_cost(
            &PhysicalOp::HashAggregate {
                group_by: vec![0],
                aggs: vec![],
                mode: scope_ir::AggMode::Single,
            },
            &out,
            &input,
            &PhysicalTuning::IDENTITY,
        );
        let stream = m.local_cost(
            &PhysicalOp::StreamAggregate {
                group_by: vec![0],
                aggs: vec![],
                mode: scope_ir::AggMode::Single,
            },
            &out,
            &input,
            &PhysicalTuning::IDENTITY,
        );
        assert!(stream < hash);
    }
}

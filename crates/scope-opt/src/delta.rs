//! Delta treatment compilation over a shared base memo.
//!
//! The steering pipeline's treatment compiles — recommendation's candidate
//! pricing and flighting's validation compiles — are single-rule-flip
//! perturbations of a plan's *default* compilation (paper §2.4: the action
//! space is edit distance 1 from the default configuration). A from-scratch
//! [`Optimizer::compile`] per treatment redoes the whole budgeted search,
//! even though almost all of it — exploration, the implementation pass over
//! every group, costing, extraction — is byte-identical to the default
//! compile. This is the cost Bao pays to price one query under many hint
//! sets (Marcus et al. 2020) and the recompilation overhead *Query
//! Optimization in the Wild* flags as the barrier to what-if steering at
//! fleet scale.
//!
//! [`BaseMemo`] freezes one configuration's full compilation — the explored
//! [`Memo`] (groups, logical expressions with rule provenance, physical
//! candidates, per-group [`crate::memo::Best`] tables), the root groups, the
//! *fired-transform* trace, and the [`Compiled`] result — as a shareable,
//! immutable artifact. Each treatment is then priced by the cheapest sound
//! method, chosen from the flip's provenance:
//!
//! * **Pruned** — the flip provably cannot change the memo: a disabled
//!   transform that never fired (it consumed no exploration budget, so the
//!   treatment's exploration trace is bit-identical), an enabled transform
//!   with no match anywhere in the final memo (rewrite production is
//!   monotone in memo growth, so it matches at no earlier state either), or
//!   a disabled implementation rule absent from the base signature (its
//!   candidates never won, and removing non-winners cannot displace a
//!   first-index minimum). The base [`Compiled`] is reused directly — after
//!   replaying the *instability draws*, which depend on the treatment's
//!   configuration fingerprint and can still fail the treatment even though
//!   the plan is unchanged.
//! * **Delta** — the flip only touches the implementation layer (an
//!   implementation/parametric rule, or a policy rule): exploration is
//!   unchanged, so the base memo's groups are reused; only groups whose
//!   logical operators match the flipped rule's target tag are
//!   re-implemented (all groups, for a policy flip), their ancestors' `Best`
//!   entries invalidated through the reverse logical edges, and costing +
//!   extraction re-run — clean groups are memoized hits.
//! * **Full** — the flip changes what exploration does (a fired transform
//!   disabled, or an enabled transform that matches): the budgeted,
//!   order-dependent search cannot be patched soundly, so the whole cascade
//!   is replayed through the task-queue engine's replay entry (skipping
//!   re-validation and the already-replayed disable-path check — exactly
//!   the checks a from-scratch compile would redo and pass). With 18 of 256
//!   rules being transforms, this is the rare case; the replayed task
//!   counts land in [`DeltaStats::replay_tasks`].
//!
//! All three paths are **byte-identical** to a from-scratch compile of the
//! treatment configuration — including `RuleInstability` failures, which
//! replay with the same rule in the same check order
//! (`tests/delta_equivalence.rs` asserts this exhaustively over seeded
//! workload days).
//!
//! [`DeltaCompiler`] adds the fleet-scale piece: a sharded, FIFO-bounded
//! cache of `Arc<BaseMemo>`s keyed by `(plan fingerprint, base
//! configuration)`, so the base memo for a recurring plan is built once and
//! shared across treatments, stages, and — under sticky literals — days.
//! [`crate::cache::CachingOptimizer`] routes
//! [`Compiler::compile_slate`](crate::search::Compiler::compile_slate)
//! through it, layering the compile-result cache on top (delta results
//! insert under the same `(fingerprint, RuleBits)` keys, so cached and
//! delta-compiled runs stay interchangeable byte-for-byte).

use crate::config::{RuleBits, RuleConfig};
use crate::memo::{GroupId, Memo};
use crate::registry::{impl_targets, RuleBehavior, TransformKind};
use crate::rules::apply_transform;
use crate::search::{CompileError, Compiled, Optimizer};
use crate::tasks::TaskEngine;
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use scope_ir::ids::mix64;
use scope_ir::logical::LogicalPlan;
use scope_ir::sharded::ShardedCache;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of the delta compiler's base-memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaConfig {
    /// Master switch. Disabled, every slate compile goes through the
    /// ordinary per-treatment path (byte-identical, only slower).
    pub enabled: bool,
    /// Maximum retained base memos across all shards (`0` = unbounded). A
    /// base memo holds a full explored memo (~tens of KB for simulated
    /// plans), so this bounds the dominant memory cost of delta compilation.
    pub capacity: usize,
    /// Lock shards (rounded up to a power of two, clamped to 1..=1024).
    pub shards: usize,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            // Plenty for the live plan population of the simulated
            // workloads (sticky literals keep ~1 plan per template alive;
            // fresh literals rotate through FIFO), while bounding worst-case
            // memory at tens of MB of retained memos.
            capacity: 512,
            shards: 8,
        }
    }
}

impl DeltaConfig {
    /// Delta compilation turned off (slates compile treatment by treatment).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Parse the `QO_DELTA` / `--delta-compile` switch spellings.
    pub fn parse_switch(value: &str) -> Result<Self, String> {
        match value {
            "on" | "1" | "true" => Ok(Self::default()),
            "off" | "0" | "false" => Ok(Self::disabled()),
            other => Err(format!("expected on|off, got `{other}`")),
        }
    }
}

/// Monotonic delta-compiler counters (snapshot semantics, like
/// [`crate::CacheStats`]): how each priced treatment was resolved, plus
/// base-memo cache traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Treatments resolved by the pruner: provably plan-identical flips that
    /// reused the base `Compiled` after replaying the instability draws.
    pub pruned: u64,
    /// Treatments priced by an incremental pass over the base memo.
    pub delta: u64,
    /// Treatments that fell back to a from-scratch compile (exploration-
    /// affecting flips, or a base compile that itself failed).
    pub full: u64,
    /// Base memos built from scratch.
    pub base_builds: u64,
    /// Base-memo cache hits.
    pub base_hits: u64,
    /// Task-queue tasks executed by replays through this compiler: the
    /// ImplementGroup tasks of delta passes (dirty groups only) plus the
    /// full cascade of NeedsFull fallbacks. The task-count pin test uses
    /// this to prove delta replays redo *only* the invalidated work.
    pub replay_tasks: u64,
}

impl DeltaStats {
    /// Total treatments priced through the delta compiler.
    #[must_use]
    pub fn treatments(&self) -> u64 {
        self.pruned + self.delta + self.full
    }

    /// Counter deltas relative to an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &DeltaStats) -> DeltaStats {
        DeltaStats {
            pruned: self.pruned.saturating_sub(earlier.pruned),
            delta: self.delta.saturating_sub(earlier.delta),
            full: self.full.saturating_sub(earlier.full),
            base_builds: self.base_builds.saturating_sub(earlier.base_builds),
            base_hits: self.base_hits.saturating_sub(earlier.base_hits),
            replay_tasks: self.replay_tasks.saturating_sub(earlier.replay_tasks),
        }
    }
}

impl std::ops::Add for DeltaStats {
    type Output = DeltaStats;

    fn add(self, rhs: DeltaStats) -> DeltaStats {
        DeltaStats {
            pruned: self.pruned + rhs.pruned,
            delta: self.delta + rhs.delta,
            full: self.full + rhs.full,
            base_builds: self.base_builds + rhs.base_builds,
            base_hits: self.base_hits + rhs.base_hits,
            replay_tasks: self.replay_tasks + rhs.replay_tasks,
        }
    }
}

impl std::iter::Sum for DeltaStats {
    fn sum<I: Iterator<Item = DeltaStats>>(iter: I) -> DeltaStats {
        iter.fold(DeltaStats::default(), std::ops::Add::add)
    }
}

/// How [`BaseMemo::price`] resolved one treatment.
#[derive(Debug, Clone, PartialEq)]
pub enum PricedTreatment {
    /// The flip provably leaves the memo — and therefore the plan, cost,
    /// and signature — unchanged; the carried result is the base `Compiled`
    /// (or the treatment-fingerprint instability failure replayed in the
    /// order a from-scratch compile would raise it).
    Pruned(Result<Compiled, CompileError>),
    /// Priced by the incremental implement/cost/extract pass.
    Delta(Result<Compiled, CompileError>),
    /// The flip touches exploration; the caller must compile from scratch.
    NeedsFull,
}

/// One configuration's compilation, frozen for incremental treatment
/// pricing. Immutable and `Sync`: slate fan-outs share it behind an `Arc`.
#[derive(Debug)]
pub struct BaseMemo {
    plan_fingerprint: u64,
    base_bits: RuleBits,
    template_seed: u64,
    compiled: Compiled,
    memo: Memo,
    roots: Vec<GroupId>,
    /// Transforms that produced ≥1 rewrite during base exploration (strict
    /// superset of provenance-visible transforms; see `crate::search`).
    fired_transforms: RuleBits,
    /// Reverse logical edges: `parents[g]` lists every group with an
    /// expression whose children include `g`. Physical expressions mirror
    /// logical children (memo invariant), so this is the complete
    /// cost-dependency graph for `Best` invalidation.
    parents: Vec<Vec<u32>>,
    /// Lazily memoized "does this transform match anywhere in the (final,
    /// immutable) memo" answers, keyed by kind: a fixed property of the
    /// frozen memo, but computing it is a full-memo scan — and every
    /// enabled-transform treatment of every slate priced against this base
    /// asks it again.
    fires: RwLock<FxHashMap<TransformKind, bool>>,
}

/// Internal classification of a treatment against a base.
enum Classification {
    /// Every flip is a provable no-op on the memo.
    Pruned,
    /// Re-implement groups whose operator tag is in `tags` (every group when
    /// `all` — a policy flip changes the implementation context globally).
    Dirty { tags: Vec<&'static str>, all: bool },
    /// Exploration-affecting flip: not patchable.
    Full,
}

impl BaseMemo {
    /// Compile `plan` under `base` from scratch and freeze the result.
    /// Fails iff the base compile fails.
    pub fn build(
        optimizer: &Optimizer,
        plan: &LogicalPlan,
        base: &RuleConfig,
    ) -> Result<BaseMemo, CompileError> {
        let full = optimizer.compile_full(plan, base)?;
        // Pre-warm the physical fingerprint once so every pruned clone
        // carries the memo (same reasoning as the compile cache's pre-warm).
        let _ = full.compiled.physical.fingerprint();
        let n = full.memo.group_count();
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for gi in 0..n as u32 {
            for lexpr in &full.memo.group(GroupId(gi)).lexprs {
                for c in &lexpr.children {
                    let up = &mut parents[c.index()];
                    if up.last() != Some(&gi) {
                        up.push(gi);
                    }
                }
            }
        }
        Ok(BaseMemo {
            plan_fingerprint: plan.fingerprint(),
            base_bits: *base.bits(),
            template_seed: plan.template_id().0,
            compiled: full.compiled,
            memo: full.memo,
            roots: full.roots,
            fired_transforms: full.fired_transforms,
            parents,
            fires: RwLock::new(FxHashMap::default()),
        })
    }

    /// The base configuration's compilation result.
    #[must_use]
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// Fingerprint of the plan this base memo was built from.
    #[must_use]
    pub fn plan_fingerprint(&self) -> u64 {
        self.plan_fingerprint
    }

    /// Price one treatment configuration against this base. The result is
    /// byte-identical to `optimizer.compile(plan, treatment)` for the plan
    /// this base was built from — including which `RuleInstability` error a
    /// failing treatment raises — except for [`PricedTreatment::NeedsFull`],
    /// where the caller must run that from-scratch compile itself.
    #[must_use]
    pub fn price(&self, optimizer: &Optimizer, treatment: &RuleConfig) -> PricedTreatment {
        self.price_counted(optimizer, treatment).0
    }

    /// [`BaseMemo::price`] plus the number of task-queue tasks the pricing
    /// replayed (the ImplementGroup tasks of a delta pass; zero for pruned
    /// or needs-full resolutions). [`DeltaCompiler`] accounts these in
    /// [`DeltaStats::replay_tasks`].
    pub(crate) fn price_counted(
        &self,
        optimizer: &Optimizer,
        treatment: &RuleConfig,
    ) -> (PricedTreatment, u64) {
        // Replay the up-front disable-path instability scan in the same
        // position `Optimizer::compile` runs it: before any search.
        if let Err(e) = optimizer.disable_path_check(treatment, self.template_seed) {
            return (PricedTreatment::Pruned(Err(e)), 0);
        }
        match self.classify(optimizer, treatment) {
            Classification::Full => (PricedTreatment::NeedsFull, 0),
            Classification::Pruned => {
                let fp = treatment.bits().fingerprint();
                let replay = optimizer
                    .plan_instability_check(&self.compiled.signature, self.template_seed, fp)
                    .map(|()| self.compiled.clone());
                (PricedTreatment::Pruned(replay), 0)
            }
            Classification::Dirty { tags, all } => {
                let (tasks, result) = self.delta_compile(optimizer, treatment, &tags, all);
                (PricedTreatment::Delta(result), tasks)
            }
        }
    }

    /// Decide, per flipped rule, whether the treatment's memo can differ
    /// from the base memo — and if only the implementation layer can, which
    /// operator tags must be re-implemented.
    fn classify(&self, optimizer: &Optimizer, treatment: &RuleConfig) -> Classification {
        let rules = optimizer.rules();
        let t_bits = *treatment.bits();
        let mut tags: Vec<&'static str> = Vec::new();
        let mut all = false;
        let mark = |tag: &'static str, tags: &mut Vec<&'static str>| {
            if !tags.contains(&tag) {
                tags.push(tag);
            }
        };
        // Rules the treatment disables relative to the base.
        for id in self.base_bits.difference(&t_bits).iter() {
            match &rules.rule(id).behavior {
                RuleBehavior::Transform(_) => {
                    // A transform that fired consumed budget; removing it
                    // reroutes the trace. One that never fired is invisible.
                    if self.fired_transforms.contains(id) {
                        return Classification::Full;
                    }
                }
                RuleBehavior::Implement(kind) => {
                    // Candidates that never won cannot displace a winner by
                    // disappearing (first-index-minimum tie-break); rules in
                    // the signature require re-implementation.
                    if self.compiled.signature.contains(id) {
                        mark(impl_targets(*kind), &mut tags);
                    }
                }
                RuleBehavior::Parametric(spec) => {
                    if self.compiled.signature.contains(id) {
                        mark(spec.target, &mut tags);
                    }
                }
                RuleBehavior::Policy(_) => all = true,
                // Required bits never differ between steering configs; if a
                // caller hand-built one that does, punt to a full compile.
                RuleBehavior::Normalization | RuleBehavior::FallbackImpl => {
                    return Classification::Full;
                }
            }
        }
        // Rules the treatment enables relative to the base.
        for id in t_bits.difference(&self.base_bits).iter() {
            match &rules.rule(id).behavior {
                RuleBehavior::Transform(kind) => {
                    // Monotonicity: no match anywhere in the final memo ⇒ no
                    // match at any prefix state ⇒ the enabled transform
                    // never fires and never consumes budget.
                    if self.transform_fires(*kind) {
                        return Classification::Full;
                    }
                }
                RuleBehavior::Implement(kind) => mark(impl_targets(*kind), &mut tags),
                RuleBehavior::Parametric(spec) => mark(spec.target, &mut tags),
                RuleBehavior::Policy(_) => all = true,
                RuleBehavior::Normalization | RuleBehavior::FallbackImpl => {
                    return Classification::Full;
                }
            }
        }
        if all || !tags.is_empty() {
            Classification::Dirty { tags, all }
        } else {
            Classification::Pruned
        }
    }

    /// The incremental pass: clone the base memo, rebuild the physical
    /// candidates of dirty groups under the treatment configuration — as a
    /// [`TaskEngine`] replay of exactly those groups' ImplementGroup tasks —
    /// invalidate `Best` on them and every ancestor, then re-cost and
    /// re-extract. Clean groups keep their base `Best` entries, which a
    /// from-scratch compile of the treatment would reproduce bit-for-bit
    /// (their candidates and their children's costs are untouched). Returns
    /// the replayed task count alongside the result.
    fn delta_compile(
        &self,
        optimizer: &Optimizer,
        treatment: &RuleConfig,
        tags: &[&'static str],
        all: bool,
    ) -> (u64, Result<Compiled, CompileError>) {
        let n = self.memo.group_count();
        // Decide the re-implementation set on the *base* memo, then fork
        // without cloning the candidate lists about to be rebuilt.
        let reimplement: Vec<bool> = (0..n as u32)
            .map(|gi| {
                all || self
                    .memo
                    .group(GroupId(gi))
                    .lexprs
                    .iter()
                    .any(|e| tags.contains(&e.op.tag()))
            })
            .collect();
        let mut memo = self.memo.fork_for_delta(&reimplement);
        let mut engine = TaskEngine::new(optimizer);
        if let Err(e) =
            engine.replay_implement(&mut memo, &reimplement, treatment, self.template_seed)
        {
            return (engine.tasks_executed, Err(e));
        }
        let mut stale = reimplement;
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&gi| stale[gi as usize]).collect();
        while let Some(gi) = queue.pop_front() {
            for &p in &self.parents[gi as usize] {
                if !stale[p as usize] {
                    stale[p as usize] = true;
                    queue.push_back(p);
                }
            }
        }
        for (gi, is_stale) in stale.iter().enumerate() {
            if *is_stale {
                memo.group_mut(GroupId(gi as u32)).best = None;
            }
        }
        let mut visiting = vec![false; n];
        for &root in &self.roots {
            optimizer.best_cost(&mut memo, root, &mut visiting);
        }
        let result = optimizer.extract(
            &memo,
            &self.roots,
            self.template_seed,
            treatment.bits().fingerprint(),
        );
        (engine.tasks_executed, result)
    }
}

impl BaseMemo {
    /// Whether `kind` produces a rewrite for any expression of the (final,
    /// fully explored) memo. Rewrite production is monotone in memo growth
    /// (groups and expressions are append-only and rules only pattern-match
    /// child-group expression lists), so "no match at the final state"
    /// implies "no match at any state of the exploration trace". Memoized
    /// per kind — the memo is frozen, so the answer never changes; a racing
    /// duplicate computation produces the identical value.
    fn transform_fires(&self, kind: TransformKind) -> bool {
        if let Some(&fires) = self.fires.read().get(&kind) {
            return fires;
        }
        let fires = (0..self.memo.group_count() as u32).any(|gi| {
            let g = GroupId(gi);
            (0..self.memo.group(g).lexprs.len())
                .any(|e| !apply_transform(kind, &self.memo, g, e).is_empty())
        });
        self.fires.write().insert(kind, fires);
        fires
    }
}

type BaseKey = (u64, RuleBits);

fn base_key_hash(key: &BaseKey) -> u64 {
    mix64(key.0, key.1.fingerprint())
}

/// The sharded base-memo cache plus treatment-resolution counters: the
/// long-lived half of delta compilation. One instance sits inside the
/// pipeline's `CachingOptimizer`, so recommendation and flighting (and,
/// under sticky literals, successive days) share each plan's base memo.
/// The memos live in a [`ShardedCache`] (the workspace-wide lock-sharded
/// FIFO cache), which also gives this cache per-shard eviction attribution.
#[derive(Debug)]
pub struct DeltaCompiler {
    bases: ShardedCache<BaseKey, Arc<BaseMemo>>,
    pruned: AtomicU64,
    delta: AtomicU64,
    full: AtomicU64,
    base_builds: AtomicU64,
    base_hits: AtomicU64,
    replay_tasks: AtomicU64,
}

impl DeltaCompiler {
    #[must_use]
    pub fn new(config: DeltaConfig) -> Self {
        Self {
            bases: ShardedCache::new(config.capacity, config.shards, base_key_hash),
            pruned: AtomicU64::new(0),
            delta: AtomicU64::new(0),
            full: AtomicU64::new(0),
            base_builds: AtomicU64::new(0),
            base_hits: AtomicU64::new(0),
            replay_tasks: AtomicU64::new(0),
        }
    }

    /// The shared base memo for `(plan, base)`: cached, or built from
    /// scratch and cached. Base compile failures are returned but not
    /// cached (they are rare — the pipeline's base is the default
    /// configuration, which view-built plans always compile under).
    pub fn base_for(
        &self,
        optimizer: &Optimizer,
        plan: &LogicalPlan,
        base: &RuleConfig,
    ) -> Result<Arc<BaseMemo>, CompileError> {
        let key = (plan.fingerprint(), *base.bits());
        if let Some(cached) = self.bases.get(&key) {
            self.base_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached);
        }
        self.base_builds.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(BaseMemo::build(optimizer, plan, base)?);
        // First writer wins on concurrent builds (both built the identical
        // artifact — compilation is deterministic).
        self.bases.insert(key, built.clone());
        Ok(built)
    }

    /// Price one treatment through `base`, resolving a
    /// [`PricedTreatment::NeedsFull`] with a task-queue replay of the full
    /// cascade (the plan was already validated at base-build time and
    /// `price` re-ran the disable-path check, so the replay entry skips
    /// both — byte-identical to a from-scratch compile), and count the
    /// resolution plus the replayed tasks.
    pub(crate) fn price_with(
        &self,
        optimizer: &Optimizer,
        base: &BaseMemo,
        plan: &LogicalPlan,
        treatment: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        debug_assert_eq!(
            base.plan_fingerprint(),
            plan.fingerprint(),
            "treatment priced against a base memo of a different plan"
        );
        let (priced, tasks) = base.price_counted(optimizer, treatment);
        self.replay_tasks.fetch_add(tasks, Ordering::Relaxed);
        match priced {
            PricedTreatment::Pruned(result) => {
                self.pruned.fetch_add(1, Ordering::Relaxed);
                result
            }
            PricedTreatment::Delta(result) => {
                self.delta.fetch_add(1, Ordering::Relaxed);
                result
            }
            PricedTreatment::NeedsFull => {
                self.full.fetch_add(1, Ordering::Relaxed);
                let (tasks, result) = optimizer.compile_replay(plan, treatment);
                self.replay_tasks.fetch_add(tasks, Ordering::Relaxed);
                result
            }
        }
    }

    /// Count a treatment that bypassed delta entirely (base compile failed).
    pub(crate) fn record_full(&self) {
        self.full.fetch_add(1, Ordering::Relaxed);
    }

    /// Price a whole slate: get-or-build the base memo, then resolve each
    /// treatment. One result per treatment, in input order, byte-identical
    /// to from-scratch compiles.
    pub fn compile_slate(
        &self,
        optimizer: &Optimizer,
        plan: &LogicalPlan,
        base: &RuleConfig,
        treatments: &[RuleConfig],
    ) -> Vec<Result<Compiled, CompileError>> {
        match self.base_for(optimizer, plan, base) {
            Ok(base_memo) => treatments
                .iter()
                .map(|t| self.price_with(optimizer, &base_memo, plan, t))
                .collect(),
            Err(_) => treatments
                .iter()
                .map(|t| {
                    self.record_full();
                    optimizer.compile(plan, t)
                })
                .collect(),
        }
    }

    /// Snapshot of the monotonic counters.
    #[must_use]
    pub fn stats(&self) -> DeltaStats {
        DeltaStats {
            pruned: self.pruned.load(Ordering::Relaxed),
            delta: self.delta.load(Ordering::Relaxed),
            full: self.full.load(Ordering::Relaxed),
            base_builds: self.base_builds.load(Ordering::Relaxed),
            base_hits: self.base_hits.load(Ordering::Relaxed),
            replay_tasks: self.replay_tasks.load(Ordering::Relaxed),
        }
    }

    /// Live base memos across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Drop every base memo (counters keep running).
    pub fn clear(&self) {
        self.bases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleFlip;
    use crate::registry::RuleCategory;
    use scope_lang::{bind_script, Catalog};

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        big   = SELECT user, spend FROM sales WHERE spend > 100;
        j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
        OUTPUT big TO "out/big_sales";
    "#;

    fn plan() -> LogicalPlan {
        bind_script(SCRIPT, &Catalog::default()).unwrap()
    }

    /// Every single-flip treatment over every flippable rule: the delta
    /// path must be byte-identical to from-scratch compilation, successes
    /// and failures alike.
    #[test]
    fn every_single_flip_matches_from_scratch() {
        let opt = Optimizer::default();
        let p = plan();
        let default = opt.default_config();
        let base = BaseMemo::build(&opt, &p, &default).unwrap();
        let mut pruned = 0usize;
        let mut delta = 0usize;
        let mut full = 0usize;
        for rule in opt.rules().flippable() {
            let treatment = default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            });
            let scratch = opt.compile(&p, &treatment);
            let priced = match base.price(&opt, &treatment) {
                PricedTreatment::Pruned(r) => {
                    pruned += 1;
                    r
                }
                PricedTreatment::Delta(r) => {
                    delta += 1;
                    r
                }
                PricedTreatment::NeedsFull => {
                    full += 1;
                    opt.compile(&p, &treatment)
                }
            };
            assert_eq!(priced, scratch, "flip of {rule} diverged");
        }
        assert!(pruned > 0, "some flips must prune (most rules never fire)");
        assert!(delta > 0, "some flips must delta (impl-layer flips)");
        // Transforms are 18 of 256 rules; full fallbacks stay the minority.
        assert!(
            full < pruned + delta,
            "full fallbacks must be the exception: {full} full vs {pruned} pruned + {delta} delta"
        );
    }

    #[test]
    fn base_config_treatment_is_pruned_to_identity() {
        let opt = Optimizer::default();
        let p = plan();
        let default = opt.default_config();
        let base = BaseMemo::build(&opt, &p, &default).unwrap();
        match base.price(&opt, &default) {
            PricedTreatment::Pruned(Ok(c)) => {
                assert_eq!(c, *base.compiled());
            }
            other => panic!("identical treatment must prune, got {other:?}"),
        }
    }

    #[test]
    fn policy_flip_takes_the_delta_path_and_matches() {
        let opt = Optimizer::default();
        let p = plan();
        let default = opt.default_config();
        let base = BaseMemo::build(&opt, &p, &default).unwrap();
        let treatment = default.with_flip(RuleFlip {
            rule: crate::registry::RULE_SHUFFLE_ELIMINATION,
            enable: false,
        });
        match base.price(&opt, &treatment) {
            PricedTreatment::Delta(result) => {
                assert_eq!(result, opt.compile(&p, &treatment));
            }
            other => panic!("policy flip must delta-compile, got {other:?}"),
        }
    }

    #[test]
    fn multi_flip_treatments_match_from_scratch() {
        // The pipeline only deploys single flips, but the API accepts any
        // configuration; spot-check double flips across layers.
        let opt = Optimizer::default();
        let p = plan();
        let default = opt.default_config();
        let base = BaseMemo::build(&opt, &p, &default).unwrap();
        let flippable: Vec<_> = opt.rules().flippable().collect();
        for pair in flippable.chunks(2).take(40) {
            let treatment = default.with_flips(
                &pair
                    .iter()
                    .map(|&rule| RuleFlip {
                        rule,
                        enable: !default.enabled(rule),
                    })
                    .collect::<Vec<_>>(),
            );
            let scratch = opt.compile(&p, &treatment);
            let priced = match base.price(&opt, &treatment) {
                PricedTreatment::Pruned(r) | PricedTreatment::Delta(r) => r,
                PricedTreatment::NeedsFull => opt.compile(&p, &treatment),
            };
            assert_eq!(priced, scratch, "flips {pair:?} diverged");
        }
    }

    #[test]
    fn delta_compiler_caches_base_memos_and_counts_paths() {
        let opt = Optimizer::default();
        let p = plan();
        let default = opt.default_config();
        let dc = DeltaCompiler::new(DeltaConfig::default());
        // Two off-by-default parametric enables: guaranteed delta path.
        let treatments: Vec<RuleConfig> = opt
            .rules()
            .rules()
            .iter()
            .filter(|r| {
                r.category == RuleCategory::OffByDefault
                    && matches!(r.behavior, RuleBehavior::Parametric(_))
            })
            .take(2)
            .map(|r| {
                default.with_flip(RuleFlip {
                    rule: r.id,
                    enable: true,
                })
            })
            .collect();
        assert_eq!(treatments.len(), 2);
        let first = dc.compile_slate(&opt, &p, &default, &treatments);
        let second = dc.compile_slate(&opt, &p, &default, &treatments);
        assert_eq!(first, second);
        for (t, r) in treatments.iter().zip(&first) {
            assert_eq!(*r, opt.compile(&p, t));
        }
        let stats = dc.stats();
        assert_eq!(stats.base_builds, 1, "one base memo for both slates");
        assert_eq!(stats.base_hits, 1, "second slate reuses it");
        assert_eq!(stats.treatments(), 4);
        assert_eq!(stats.delta, 4, "parametric enables are delta-priced");
        assert_eq!(dc.len(), 1);
        dc.clear();
        assert!(dc.is_empty());
    }

    #[test]
    fn base_capacity_evicts_fifo() {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let dc = DeltaCompiler::new(DeltaConfig {
            enabled: true,
            capacity: 2,
            shards: 1,
        });
        for literal in ["100", "200", "300"] {
            let p = bind_script(
                &SCRIPT.replace("spend > 100", &format!("spend > {literal}")),
                &Catalog::default(),
            )
            .unwrap();
            dc.base_for(&opt, &p, &default).unwrap();
        }
        assert_eq!(dc.len(), 2, "FIFO keeps the two newest base memos");
        assert_eq!(dc.stats().base_builds, 3);
    }

    #[test]
    fn config_defaults_and_switch_parsing() {
        let c = DeltaConfig::default();
        assert!(c.enabled && c.capacity > 0 && c.shards > 0);
        assert!(!DeltaConfig::disabled().enabled);
        assert_eq!(DeltaConfig::parse_switch("on"), Ok(DeltaConfig::default()));
        assert_eq!(
            DeltaConfig::parse_switch("off"),
            Ok(DeltaConfig::disabled())
        );
        assert!(DeltaConfig::parse_switch("bogus").is_err());
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<DeltaConfig>(&json).unwrap(), c);
    }

    /// Satellite pin: delta replays redo only the invalidated work, and the
    /// full-fallback path replays exactly the task cascade a from-scratch
    /// compile would run — no extra passes, no double exploration.
    #[test]
    fn replay_task_counts_pin_delta_and_full_paths() {
        let opt = Optimizer::default();
        let p = plan();
        let default = opt.default_config();
        let dc = DeltaCompiler::new(DeltaConfig::default());
        let base = dc.base_for(&opt, &p, &default).unwrap();

        let mut dirty_flip = None;
        let mut full_flip = None;
        for rule in opt.rules().flippable() {
            let treatment = default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            });
            match base.price(&opt, &treatment) {
                PricedTreatment::Delta(_) if dirty_flip.is_none() => dirty_flip = Some(treatment),
                PricedTreatment::NeedsFull if full_flip.is_none() => full_flip = Some(treatment),
                _ => {}
            }
            if dirty_flip.is_some() && full_flip.is_some() {
                break;
            }
        }
        let dirty_flip = dirty_flip.expect("some impl-layer flip takes the delta path");
        let full_flip = full_flip.expect("some fired-transform flip needs a full replay");

        // Dirty replay: strictly fewer tasks than the whole cascade.
        let direct_dirty = opt
            .compile_budgeted(&p, &dirty_flip, crate::tasks::CompileBudget::unlimited())
            .map(|b| b.tasks_executed)
            .unwrap_or(u64::MAX);
        let before = dc.stats().replay_tasks;
        let priced = dc.price_with(&opt, &base, &p, &dirty_flip);
        let dirty_tasks = dc.stats().replay_tasks - before;
        assert_eq!(priced, opt.compile(&p, &dirty_flip));
        assert!(dirty_tasks > 0, "delta pass must replay some groups");
        assert!(
            dirty_tasks < direct_dirty,
            "delta replay ({dirty_tasks} tasks) must redo less than a \
             from-scratch cascade ({direct_dirty} tasks)"
        );

        // Full fallback: exactly the tasks of a direct engine run.
        let direct_full = opt
            .compile_budgeted(&p, &full_flip, crate::tasks::CompileBudget::unlimited())
            .map(|b| b.tasks_executed)
            .ok();
        let before = dc.stats().replay_tasks;
        let priced = dc.price_with(&opt, &base, &p, &full_flip);
        let full_tasks = dc.stats().replay_tasks - before;
        assert_eq!(priced, opt.compile(&p, &full_flip));
        if let Some(direct_full) = direct_full {
            assert_eq!(
                full_tasks, direct_full,
                "full fallback must replay exactly the direct cascade"
            );
        } else {
            assert!(full_tasks > 0, "failed replays still ran the cascade");
        }
    }

    #[test]
    fn stats_roll_up() {
        let a = DeltaStats {
            pruned: 1,
            delta: 2,
            full: 3,
            base_builds: 1,
            base_hits: 0,
            replay_tasks: 10,
        };
        let b = DeltaStats {
            pruned: 2,
            delta: 1,
            full: 0,
            base_builds: 0,
            base_hits: 4,
            replay_tasks: 5,
        };
        let s = a + b;
        assert_eq!(s.treatments(), 9);
        assert_eq!(s.base_hits, 4);
        assert_eq!([a, b].into_iter().sum::<DeltaStats>(), s);
        assert_eq!(s.since(&a), b);
    }
}

//! Sharded, concurrent compile-result cache.
//!
//! The steering pipeline recompiles the same `(plan, rule configuration)`
//! pairs over and over: the span fixpoint alone runs up to `max_iterations`
//! recompiles per job, then recommendation scoring and validation flighting
//! recompile the very same pairs again the same day ("Query Optimization in
//! the Wild" calls this recompilation cost the barrier to steering at fleet
//! scale). Compilation is deterministic — the result depends only on the
//! plan bytes and the configuration bits — so those pairs are perfect cache
//! keys: a cached run is byte-identical to an uncached one.
//!
//! [`CompileCache`] is a [`scope_ir::ShardedCache`] (the workspace-wide
//! lock-sharded FIFO cache), keyed by `(plan fingerprint, RuleBits)` and
//! storing full `Result<Compiled, CompileError>` values — **failures are
//! cached too**, so a flip known to crash compilation for a template is
//! replayed instead of recompiled. The plan fingerprint hashes the
//! *serialized* plan, not the template id: two instances of one template
//! differ in literals and actual statistics, and conflating them would make
//! cached runs observably different from uncached ones.
//!
//! [`CachingOptimizer`] packages an [`Optimizer`] with an optional cache
//! behind the [`Compiler`] trait, so span computation, recommendation
//! recompiles, and flighting's validation compiles all share one cache
//! without caring whether it is enabled.

use crate::config::{RuleBits, RuleConfig};
use crate::delta::{DeltaCompiler, DeltaConfig, DeltaStats};
use crate::registry::RuleSet;
use crate::search::{CompileError, Compiled, Compiler, Optimizer};
use crate::tasks::{BudgetCounters, CompileBudget};
use scope_ir::ids::mix64;
use scope_ir::logical::LogicalPlan;
use scope_ir::sharded::ShardedCache;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of the compile-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Master switch. Disabled, every compile goes straight to the
    /// optimizer (the pre-cache behavior, bit-for-bit).
    pub enabled: bool,
    /// Maximum cached compile results across all shards (`0` = unbounded).
    pub capacity: usize,
    /// Lock shards (rounded up to a power of two, clamped to 1..=1024).
    /// More shards = less write contention under parallel fan-outs.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            // ~25x the per-day insert volume of the largest simulated
            // workloads; bounds worst-case memory at roughly tens of MB of
            // retained physical plans.
            capacity: 1 << 14,
            shards: 16,
        }
    }
}

impl CacheConfig {
    /// The cache turned off (compiles go straight to the optimizer).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// The shared counter vocabulary (also used by the execution-result cache in
/// `scope-runtime`); re-exported here so compile-cache callers keep writing
/// `scope_opt::CacheStats`.
pub use scope_ir::counters::CacheStats;

/// Cache key: exact plan identity (hash of the serialized plan — literals,
/// estimated *and* actual statistics included) plus the full 256-bit rule
/// configuration.
type Key = (u64, RuleBits);

/// The sharded compile-result cache: a [`ShardedCache`] of full compile
/// results (per-shard FIFO eviction with per-shard attribution — see
/// [`CompileCache::shard_evictions`]) plus hit/miss/insert accounting.
/// `&CompileCache` is `Sync`: parallel pipeline fan-outs hit it
/// concurrently, readers sharing each shard lock.
#[derive(Debug)]
pub struct CompileCache {
    entries: ShardedCache<Key, Result<Compiled, CompileError>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

fn compile_key_hash(key: &Key) -> u64 {
    mix64(key.0, key.1.fingerprint())
}

impl CompileCache {
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self {
            entries: ShardedCache::new(config.capacity, config.shards, compile_key_hash),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Stable fingerprint of a plan's exact serialized form (memoized inside
    /// the plan, so repeat lookups on one plan cost an atomic load).
    /// Deliberately *not* [`LogicalPlan::template_id`]: the template id
    /// normalizes literals away, but compile results depend on them.
    #[must_use]
    pub fn plan_fingerprint(plan: &LogicalPlan) -> u64 {
        plan.fingerprint()
    }

    /// The cached compile entry point: return the stored result for
    /// `(plan, config)` or compile, store, and return it. Compilation runs
    /// *outside* any lock, so concurrent misses on different keys never
    /// serialize on each other.
    pub fn get_or_compile(
        &self,
        optimizer: &Optimizer,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        if let Some(cached) = self.lookup(plan, config) {
            return cached;
        }
        let result = optimizer.compile(plan, config);
        self.insert(plan, config, &result);
        result
    }

    /// Counted lookup: the stored result for `(plan, config)`, bumping the
    /// hit/miss counters. The delta slate path uses this (paired with
    /// [`CompileCache::insert`]) so a slate's cache traffic is accounted
    /// exactly like [`CompileCache::get_or_compile`]'s.
    #[must_use]
    pub fn lookup(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Option<Result<Compiled, CompileError>> {
        let key = (Self::plan_fingerprint(plan), *config.bits());
        let found = self.entries.get(&key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Store a compile result computed elsewhere (a delta-compiled
    /// treatment inserts under the same `(fingerprint, RuleBits)` key a
    /// from-scratch compile would use — the results are byte-identical, so
    /// the cache cannot tell them apart).
    pub fn insert(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
        result: &Result<Compiled, CompileError>,
    ) {
        // Pre-warm the physical plan's fingerprint memo once per unique
        // compile — through the reference, so the *caller's* value (and
        // every clone taken from it afterwards, including the one stored
        // below) carries the memo and downstream execution-cache lookups
        // (`scope_runtime::CachingExecutor`) cost an atomic load instead of
        // a serialize-and-hash per execution.
        if let Ok(compiled) = result {
            let _ = compiled.physical.fingerprint();
        }
        let key = (Self::plan_fingerprint(plan), *config.bits());
        if self.entries.insert(key, result.clone()) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the monotonic counters. Evictions are summed from the
    /// per-shard counters (see [`CompileCache::shard_evictions`]).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.entries.evictions(),
        }
    }

    /// Evictions attributed to each shard, in shard order. Capacity is
    /// enforced per shard, so skewed key distributions show up here as one
    /// shard churning while the rest idle — invisible when the counter was
    /// a single cache-wide atomic.
    #[must_use]
    pub fn shard_evictions(&self) -> Vec<u64> {
        self.entries.shard_evictions()
    }

    /// Live entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (counters keep running).
    pub fn clear(&self) {
        self.entries.clear();
    }
}

/// An [`Optimizer`] plus an optional [`CompileCache`] and an optional
/// [`DeltaCompiler`], behind the same [`Compiler`] interface as the bare
/// optimizer. This is what the pipeline holds: one wrapper, one shared
/// compile-result cache and one shared base-memo cache across span
/// computation, recommendation scoring, validation recompiles — and across
/// days.
///
/// The caches sit behind `Arc`s so several `CachingOptimizer`s can share one
/// process-wide cache (fleet mode: N tenants, one compile cache). Sharing is
/// sound because the keys are tenant-invariant — the exact serialized-plan
/// fingerprint plus the full `RuleBits` — so a hit returns exactly what a
/// local compile would have produced, whichever tenant inserted it.
#[derive(Debug)]
pub struct CachingOptimizer {
    inner: Optimizer,
    cache: Option<Arc<CompileCache>>,
    /// Delta treatment compilation for [`CachingOptimizer::compile_slate`]
    /// (`None` = slates compile treatment by treatment).
    delta: Option<Arc<DeltaCompiler>>,
}

impl CachingOptimizer {
    /// Wrap `inner` per `config` (`enabled: false` builds no cache at all).
    /// Delta compilation starts disabled; see [`CachingOptimizer::with_delta`].
    #[must_use]
    pub fn new(inner: Optimizer, config: CacheConfig) -> Self {
        Self {
            cache: config.enabled.then(|| Arc::new(CompileCache::new(config))),
            inner,
            delta: None,
        }
    }

    /// Enable (or explicitly disable) delta slate compilation per `config`.
    #[must_use]
    pub fn with_delta(mut self, config: DeltaConfig) -> Self {
        self.delta = config.enabled.then(|| Arc::new(DeltaCompiler::new(config)));
        self
    }

    /// Wrap `inner` around caches owned elsewhere (fleet mode: every
    /// tenant's optimizer points at the same process-wide [`CompileCache`]
    /// and [`DeltaCompiler`]). `None` disables the respective layer, exactly
    /// like the config-driven constructors.
    #[must_use]
    pub fn with_shared_caches(
        inner: Optimizer,
        cache: Option<Arc<CompileCache>>,
        delta: Option<Arc<DeltaCompiler>>,
    ) -> Self {
        Self {
            inner,
            cache,
            delta,
        }
    }

    /// Handle to the compile cache for sharing with another optimizer.
    #[must_use]
    pub fn shared_cache(&self) -> Option<Arc<CompileCache>> {
        self.cache.clone()
    }

    /// Handle to the delta compiler for sharing with another optimizer.
    #[must_use]
    pub fn shared_delta(&self) -> Option<Arc<DeltaCompiler>> {
        self.delta.clone()
    }

    /// A pass-through wrapper (every compile goes straight to the inner
    /// optimizer).
    #[must_use]
    pub fn uncached(inner: Optimizer) -> Self {
        Self {
            inner,
            cache: None,
            delta: None,
        }
    }

    #[must_use]
    pub fn inner(&self) -> &Optimizer {
        &self.inner
    }

    #[must_use]
    pub fn cache(&self) -> Option<&CompileCache> {
        self.cache.as_deref()
    }

    /// Counter snapshot; all-zero when the cache is disabled.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache
            .as_deref()
            .map(CompileCache::stats)
            .unwrap_or_default()
    }

    #[must_use]
    pub fn rules(&self) -> &RuleSet {
        self.inner.rules()
    }

    #[must_use]
    pub fn default_config(&self) -> RuleConfig {
        self.inner.default_config()
    }

    /// Compile through the cache when enabled, directly otherwise.
    ///
    /// With both the cache and the delta compiler enabled, a *default-
    /// configuration* miss compiles through [`DeltaCompiler::base_for`]
    /// instead: the pipeline compiles every plan's default configuration
    /// anyway (production view build, span fixpoint), and retaining that
    /// compilation's explored memo as the plan's [`crate::delta::BaseMemo`]
    /// costs ~a quarter of rebuilding it later — which is what made delta
    /// slates pay off even for fresh-literal workloads whose plans never
    /// recur across days. The returned `Compiled` is the identical artifact
    /// either way.
    pub fn compile(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        match (&self.cache, &self.delta) {
            (Some(cache), Some(delta)) if *config == self.inner.default_config() => {
                if let Some(cached) = cache.lookup(plan, config) {
                    return cached;
                }
                let result = delta
                    .base_for(&self.inner, plan, config)
                    .map(|base| base.compiled().clone());
                cache.insert(plan, config, &result);
                result
            }
            (Some(cache), _) => cache.get_or_compile(&self.inner, plan, config),
            (None, _) => self.inner.compile(plan, config),
        }
    }

    /// Compile under a [`CompileBudget`], recording the outcome of every
    /// *finite*-budget compile in `counters` — the pipeline's load-shedding
    /// entry point.
    ///
    /// Budget/cache-key soundness (see `crate::tasks`): the compile cache
    /// and the delta compiler are keyed on `(plan, config)` only, so their
    /// results are valid solely for budget-independent compiles. An
    /// unlimited budget routes through them unchanged (and is never
    /// counted — it cannot shed). A finite budget bypasses both and runs
    /// the task engine from scratch: truncated results are never cached,
    /// never served from cache, and never priced against a base memo frozen
    /// at a different truncation point. The finite path is a pure function
    /// of `(plan, config, budget)`, so shed decisions stay deterministic
    /// across thread counts and cache states.
    pub fn compile_shedding(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
        budget: CompileBudget,
        counters: &BudgetCounters,
    ) -> Result<Compiled, CompileError> {
        if budget.is_unlimited() {
            return self.compile(plan, config);
        }
        let result = self.inner.compile_budgeted(plan, config, budget);
        counters.record(&result);
        result.map(|b| b.compiled)
    }

    /// The delta compiler behind [`CachingOptimizer::compile_slate`], when
    /// enabled.
    #[must_use]
    pub fn delta_compiler(&self) -> Option<&DeltaCompiler> {
        self.delta.as_deref()
    }

    /// Delta-compiler counter snapshot; all-zero when delta is disabled.
    #[must_use]
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta
            .as_deref()
            .map(DeltaCompiler::stats)
            .unwrap_or_default()
    }

    /// Price a treatment slate: compile-cache lookups first, then the delta
    /// compiler for the misses (inserting its byte-identical results under
    /// the same `(fingerprint, RuleBits)` keys a from-scratch compile would
    /// use), falling back to per-treatment compiles when delta is disabled
    /// or the base itself fails to compile.
    pub fn compile_slate(
        &self,
        plan: &LogicalPlan,
        base: &RuleConfig,
        treatments: &[RuleConfig],
    ) -> Vec<Result<Compiled, CompileError>> {
        let Some(delta) = &self.delta else {
            return treatments
                .iter()
                .map(|treatment| self.compile(plan, treatment))
                .collect();
        };
        let mut slots: Vec<Option<Result<Compiled, CompileError>>> = match &self.cache {
            Some(cache) => treatments
                .iter()
                .map(|treatment| cache.lookup(plan, treatment))
                .collect(),
            None => treatments.iter().map(|_| None).collect(),
        };
        if slots.iter().any(Option::is_none) {
            let base_memo = delta.base_for(&self.inner, plan, base);
            for (slot, treatment) in slots.iter_mut().zip(treatments) {
                if slot.is_some() {
                    continue;
                }
                let result = match &base_memo {
                    Ok(base_memo) => delta.price_with(&self.inner, base_memo, plan, treatment),
                    Err(_) => {
                        // No base to share: price this treatment from
                        // scratch (still counted, still cached).
                        delta.record_full();
                        self.inner.compile(plan, treatment)
                    }
                };
                if let Some(cache) = &self.cache {
                    cache.insert(plan, treatment, &result);
                }
                *slot = Some(result);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every slate slot resolved"))
            .collect()
    }
}

impl Compiler for CachingOptimizer {
    fn rules(&self) -> &RuleSet {
        CachingOptimizer::rules(self)
    }

    fn default_config(&self) -> RuleConfig {
        CachingOptimizer::default_config(self)
    }

    fn compile(&self, plan: &LogicalPlan, config: &RuleConfig) -> Result<Compiled, CompileError> {
        CachingOptimizer::compile(self, plan, config)
    }

    fn compile_slate(
        &self,
        plan: &LogicalPlan,
        base: &RuleConfig,
        treatments: &[RuleConfig],
    ) -> Vec<Result<Compiled, CompileError>> {
        CachingOptimizer::compile_slate(self, plan, base, treatments)
    }
}

/// A [`Compiler`] view over a [`CachingOptimizer`] with a fixed
/// [`CompileBudget`]: the pipeline's generic compile sites (span fixpoint,
/// view building, recommendation slates, flighting) work unchanged, while
/// every finite-budget compile routes through
/// [`CachingOptimizer::compile_shedding`] — task engine from scratch,
/// cache/delta bypassed, outcome recorded in the shared [`BudgetCounters`].
/// At unlimited budget this is a zero-cost passthrough, byte-identical to
/// handing out the `CachingOptimizer` itself.
#[derive(Debug, Clone, Copy)]
pub struct BudgetedCompiler<'a> {
    inner: &'a CachingOptimizer,
    budget: CompileBudget,
    counters: &'a BudgetCounters,
}

impl<'a> BudgetedCompiler<'a> {
    #[must_use]
    pub fn new(
        inner: &'a CachingOptimizer,
        budget: CompileBudget,
        counters: &'a BudgetCounters,
    ) -> Self {
        Self {
            inner,
            budget,
            counters,
        }
    }

    /// The fixed budget every compile through this view runs under.
    #[must_use]
    pub fn budget(&self) -> CompileBudget {
        self.budget
    }
}

impl Compiler for BudgetedCompiler<'_> {
    fn rules(&self) -> &RuleSet {
        self.inner.rules()
    }

    fn default_config(&self) -> RuleConfig {
        self.inner.default_config()
    }

    fn compile(&self, plan: &LogicalPlan, config: &RuleConfig) -> Result<Compiled, CompileError> {
        self.inner
            .compile_shedding(plan, config, self.budget, self.counters)
    }

    fn compile_slate(
        &self,
        plan: &LogicalPlan,
        base: &RuleConfig,
        treatments: &[RuleConfig],
    ) -> Vec<Result<Compiled, CompileError>> {
        if self.budget.is_unlimited() {
            return self.inner.compile_slate(plan, base, treatments);
        }
        // Budgeted slates bypass delta: a base memo frozen at one truncation
        // point cannot soundly replay another (see `crate::tasks`). Each
        // treatment runs the engine under the same per-compile budget.
        treatments
            .iter()
            .map(|treatment| self.compile(plan, treatment))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleFlip;
    use scope_lang::{bind_script, Catalog};

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        big   = SELECT user, spend FROM sales WHERE spend > 100;
        j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
    "#;

    fn plan() -> LogicalPlan {
        bind_script(SCRIPT, &Catalog::default()).unwrap()
    }

    #[test]
    fn hit_returns_identical_compiled_result() {
        let opt = Optimizer::default();
        let cache = CompileCache::new(CacheConfig::default());
        let p = plan();
        let cfg = opt.default_config();
        let first = cache.get_or_compile(&opt, &p, &cfg).unwrap();
        let second = cache.get_or_compile(&opt, &p, &cfg).unwrap();
        assert_eq!(first.physical, second.physical);
        assert_eq!(first.signature, second.signature);
        assert!((first.est_cost - second.est_cost).abs() < 1e-12);
        let direct = opt.compile(&p, &cfg).unwrap();
        assert_eq!(second.physical, direct.physical, "cache is transparent");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_plans_get_distinct_entries() {
        let opt = Optimizer::default();
        let cache = CompileCache::new(CacheConfig::default());
        let p = plan();
        let default = opt.default_config();
        // Same plan, two configs.
        let off_rule = opt
            .rules()
            .rules()
            .iter()
            .find(|r| r.category == crate::registry::RuleCategory::OffByDefault)
            .unwrap()
            .id;
        let flipped = default.with_flip(RuleFlip {
            rule: off_rule,
            enable: true,
        });
        let _ = cache.get_or_compile(&opt, &p, &default);
        let _ = cache.get_or_compile(&opt, &p, &flipped);
        assert_eq!(cache.len(), 2);
        // Same template, different literal => different plan fingerprint.
        let other = bind_script(
            &SCRIPT.replace("spend > 100", "spend > 200"),
            &Catalog::default(),
        )
        .unwrap();
        assert_eq!(other.template_id(), p.template_id());
        assert_ne!(
            CompileCache::plan_fingerprint(&other),
            CompileCache::plan_fingerprint(&p),
            "literal changes must change the cache key even though the \
             template id is literal-invariant"
        );
    }

    #[test]
    fn cached_rule_instability_is_replayed_not_recompiled() {
        let opt = Optimizer::default();
        let cache = CompileCache::new(CacheConfig::default());
        let p = plan();
        let default = opt.default_config();
        // Find any single flip whose compilation fails with RuleInstability.
        let mut failing = None;
        for rule in opt.rules().flippable() {
            let cfg = default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            });
            if let Err(CompileError::RuleInstability { .. }) = opt.compile(&p, &cfg) {
                failing = Some(cfg);
                break;
            }
        }
        let Some(cfg) = failing else {
            // Astronomically unlikely across 200+ flippable rules, but the
            // instability draws are seeded: tolerate a lucky template.
            return;
        };
        let first = cache.get_or_compile(&opt, &p, &cfg);
        let second = cache.get_or_compile(&opt, &p, &cfg);
        assert!(matches!(first, Err(CompileError::RuleInstability { .. })));
        assert_eq!(first, second, "the cached failure replays identically");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 1),
            "the second lookup must hit (no recompile of the known failure)"
        );
    }

    #[test]
    fn capacity_evicts_oldest_entries_fifo() {
        let opt = Optimizer::default();
        // One shard, room for exactly 2 entries.
        let cache = CompileCache::new(CacheConfig {
            enabled: true,
            capacity: 2,
            shards: 1,
        });
        let p = plan();
        let default = opt.default_config();
        let mut configs = Vec::new();
        for rule in opt.rules().flippable().take(3) {
            configs.push(default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            }));
        }
        for cfg in &configs {
            let _ = cache.get_or_compile(&opt, &p, cfg);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Oldest (configs[0]) was evicted: looking it up again misses.
        let before = cache.stats();
        let _ = cache.get_or_compile(&opt, &p, &configs[0]);
        assert_eq!(cache.stats().since(&before).misses, 1);
        // Newest still hits.
        let before = cache.stats();
        let _ = cache.get_or_compile(&opt, &p, &configs[2]);
        assert_eq!(cache.stats().since(&before).hits, 1);
    }

    #[test]
    fn evictions_are_attributed_to_the_shard_that_evicted() {
        let opt = Optimizer::default();
        // Several shards, one entry of headroom each: every eviction must
        // land on the shard whose slice of the capacity overflowed, and the
        // roll-up must equal the per-shard sum (the counter used to be one
        // cache-wide atomic, which hid exactly this attribution).
        let cache = CompileCache::new(CacheConfig {
            enabled: true,
            capacity: 4,
            shards: 4,
        });
        let p = plan();
        let default = opt.default_config();
        for rule in opt.rules().flippable().take(12) {
            let _ = cache.get_or_compile(
                &opt,
                &p,
                &default.with_flip(RuleFlip {
                    rule,
                    enable: !default.enabled(rule),
                }),
            );
        }
        let per_shard = cache.shard_evictions();
        assert_eq!(per_shard.len(), 4);
        let total: u64 = per_shard.iter().sum();
        assert_eq!(
            cache.stats().evictions,
            total,
            "stats roll up the per-shard eviction counters"
        );
        // 12 inserts into 4 shards of capacity 1 must evict somewhere...
        assert!(total > 0, "per-shard capacity must have been exceeded");
        // ...and live entries respect the per-shard cap.
        assert_eq!(cache.stats().inserts, 12);
        assert_eq!(cache.len() as u64 + total, 12);
    }

    #[test]
    fn lookup_and_insert_mirror_get_or_compile_counters() {
        let opt = Optimizer::default();
        let cache = CompileCache::new(CacheConfig::default());
        let p = plan();
        let cfg = opt.default_config();
        assert!(cache.lookup(&p, &cfg).is_none());
        assert_eq!(cache.stats().misses, 1);
        let result = opt.compile(&p, &cfg);
        cache.insert(&p, &cfg, &result);
        assert_eq!(cache.stats().inserts, 1);
        // The caller's value was pre-warmed through the reference, so the
        // fingerprint memo is already set on `result` itself.
        let looked_up = cache.lookup(&p, &cfg).expect("inserted result hits");
        assert_eq!(looked_up, result);
        assert_eq!(cache.stats().hits, 1);
        // Duplicate insert: first writer wins, no double count.
        cache.insert(&p, &cfg, &result);
        assert_eq!(cache.stats().inserts, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn caching_optimizer_is_transparent_and_countable() {
        let cached = CachingOptimizer::new(Optimizer::default(), CacheConfig::default());
        let uncached = CachingOptimizer::uncached(Optimizer::default());
        let p = plan();
        let cfg = cached.default_config();
        let a = cached.compile(&p, &cfg).unwrap();
        let b = cached.compile(&p, &cfg).unwrap();
        let c = uncached.compile(&p, &cfg).unwrap();
        assert_eq!(a.physical, b.physical);
        assert_eq!(a.physical, c.physical);
        assert_eq!(cached.stats().hits, 1);
        assert_eq!(uncached.stats(), CacheStats::default());
        assert!(uncached.cache().is_none());
    }

    #[test]
    fn clear_empties_every_shard() {
        let opt = Optimizer::default();
        let cache = CompileCache::new(CacheConfig::default());
        let p = plan();
        let _ = cache.get_or_compile(&opt, &p, &opt.default_config());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn config_defaults_and_disabled() {
        let c = CacheConfig::default();
        assert!(c.enabled);
        assert!(c.capacity > 0 && c.shards > 0);
        assert!(!CacheConfig::disabled().enabled);
        let json = serde_json::to_string(&c).unwrap();
        let back: CacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

//! Logical→physical implementation rules, including the required fallback
//! implementations and the parametric variant rules.
//!
//! Exchange placement happens here: each implementation decides, per input
//! edge, whether data must be moved (and how) by comparing the child group's
//! natural distribution with the operator's requirement, subject to the
//! `ShuffleElimination` policy rule.

use crate::memo::{Dist, ExchangeSpec, GroupId, Memo, PExpr, PreLocal};
use crate::registry::{ImplKind, ParametricSpec, RuleBehavior, RuleDef, RuleSet};
use crate::search::SearchOptions;
use scope_ir::logical::LogicalOp;
use scope_ir::physical::{AggMode, Partitioning, PhysicalOp, PhysicalTuning, ScanVariant};

/// Context shared across implementation-rule applications for one compile.
pub struct ImplContext<'a> {
    pub rules: &'a RuleSet,
    pub opts: &'a SearchOptions,
    /// `ShuffleElimination` policy rule enabled.
    pub shuffle_elimination: bool,
    /// `IntermediateCompression` policy rule enabled.
    pub compression: bool,
    pub template_seed: u64,
}

/// Number of partitions for an exchange moving approximately `bytes_est`
/// bytes, scaled by the implementation's parallelism knob. Deterministic
/// (vertex counts must be noise-free). Bytes-based sizing means any flip
/// that shrinks the data flowing through an exchange also shrinks the
/// downstream vertex count.
#[must_use]
pub fn choose_partitions(bytes_est: f64, opts: &SearchOptions, parallelism_mult: f64) -> u32 {
    let raw = (bytes_est / opts.bytes_per_partition).ceil().max(1.0);
    let pow2 = raw.log2().ceil().exp2();
    let scaled = (pow2 * parallelism_mult).round().max(1.0);
    (scaled as u32).clamp(1, opts.max_partitions)
}

/// Apply one implementation or parametric rule to a logical expression.
/// Returns `None` when the rule does not apply (wrong operator, inputs out
/// of its applicability envelope, …).
#[must_use]
pub fn implement_expr(
    rule: &RuleDef,
    memo: &Memo,
    gid: GroupId,
    eidx: usize,
    ctx: &ImplContext<'_>,
) -> Option<PExpr> {
    let expr = &memo.group(gid).lexprs[eidx];
    let mut provenance = expr.provenance;
    provenance.insert(rule.id);
    let (claimed, actual) = match &rule.behavior {
        RuleBehavior::Implement(ImplKind::NestedLoopJoin) => {
            // Nested loop is modelled as a single-partition join with a
            // steep CPU penalty (its quadratic work), honest on both sides.
            let t = PhysicalTuning {
                cpu_mult: 6.0,
                io_mult: 1.0,
                parallelism_mult: 1.0,
            };
            (t, t)
        }
        RuleBehavior::Implement(_) => (PhysicalTuning::IDENTITY, PhysicalTuning::IDENTITY),
        RuleBehavior::FallbackImpl => {
            let t = PhysicalTuning {
                cpu_mult: ctx.opts.fallback_cpu_penalty,
                io_mult: ctx.opts.fallback_io_penalty,
                parallelism_mult: 1.0,
            };
            (t, t)
        }
        RuleBehavior::Parametric(spec) => {
            if !parametric_matches(spec, &expr.op) {
                return None;
            }
            (
                spec.claimed,
                ctx.rules.actual_tuning(rule.id, ctx.template_seed),
            )
        }
        _ => return None,
    };
    let kind = match &rule.behavior {
        RuleBehavior::Implement(kind) => Some(*kind),
        _ => None,
    };
    build_pexpr(
        memo, gid, eidx, kind, rule, claimed, actual, provenance, ctx,
    )
}

/// Construct the physical expression. `kind == None` means "canonical
/// implementation for this operator" (fallback and parametric rules).
#[allow(clippy::too_many_arguments)]
fn build_pexpr(
    memo: &Memo,
    gid: GroupId,
    eidx: usize,
    kind: Option<ImplKind>,
    rule: &RuleDef,
    claimed: PhysicalTuning,
    actual: PhysicalTuning,
    provenance: crate::config::RuleBits,
    ctx: &ImplContext<'_>,
) -> Option<PExpr> {
    let expr = &memo.group(gid).lexprs[eidx];
    let children = expr.children.clone();
    let child_stats = |i: usize| memo.group(children[i]).stats;
    let child_dist = |i: usize| &memo.group(children[i]).dist;
    let mk = |op: PhysicalOp,
              exchanges: Vec<Option<ExchangeSpec>>,
              pre_local: Vec<Option<PreLocal>>,
              elided: bool| {
        Some(PExpr {
            op,
            children: children.clone(),
            exchanges,
            pre_local,
            claimed,
            actual,
            rule: rule.id,
            provenance,
            elided_exchange: elided,
        })
    };
    // The consumer's IO knob scales the bytes its shuffle edges move, so it
    // participates in partition sizing as well.
    let hash_exchange = |cols: Vec<usize>, bytes: f64| ExchangeSpec {
        scheme: Partitioning::Hash {
            columns: cols,
            partitions: choose_partitions(
                bytes * claimed.io_mult,
                ctx.opts,
                claimed.parallelism_mult,
            ),
        },
        sorted: false,
        compressed: ctx.compression,
    };
    let range_exchange = |cols: Vec<usize>, bytes: f64| ExchangeSpec {
        scheme: Partitioning::Range {
            columns: cols,
            partitions: choose_partitions(
                bytes * claimed.io_mult,
                ctx.opts,
                claimed.parallelism_mult,
            ),
        },
        sorted: true,
        compressed: ctx.compression,
    };

    match (&expr.op, kind) {
        (LogicalOp::Extract { table }, Some(ImplKind::Scan) | None) => mk(
            PhysicalOp::TableScan {
                table: table.name.clone(),
                variant: ScanVariant::Sequential,
            },
            vec![],
            vec![],
            false,
        ),
        (LogicalOp::Filter { predicate, .. }, Some(ImplKind::Filter) | None) => mk(
            PhysicalOp::FilterExec {
                predicate: predicate.clone(),
            },
            vec![None],
            vec![None],
            false,
        ),
        (LogicalOp::Project { exprs }, Some(ImplKind::Project) | None) => mk(
            PhysicalOp::ProjectExec {
                exprs: exprs.clone(),
            },
            vec![None],
            vec![None],
            false,
        ),
        (LogicalOp::Join { kind: jk, on, .. }, jkind) => {
            let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
            let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
            let (lbytes, rbytes) = (
                child_stats(0).estimated_bytes(),
                child_stats(1).estimated_bytes(),
            );
            match jkind {
                Some(ImplKind::HashJoin) | None => {
                    let mut elided = false;
                    let lx =
                        if ctx.shuffle_elimination && child_dist(0) == &Dist::Hash(lcols.clone()) {
                            elided = true;
                            None
                        } else {
                            Some(hash_exchange(lcols, lbytes.max(rbytes)))
                        };
                    let rx =
                        if ctx.shuffle_elimination && child_dist(1) == &Dist::Hash(rcols.clone()) {
                            elided = true;
                            None
                        } else {
                            Some(hash_exchange(rcols, lbytes.max(rbytes)))
                        };
                    mk(
                        PhysicalOp::HashJoin {
                            kind: *jk,
                            on: on.clone(),
                        },
                        vec![lx, rx],
                        vec![None, None],
                        elided,
                    )
                }
                Some(ImplKind::MergeJoin) => {
                    let mut elided = false;
                    let lx = if ctx.shuffle_elimination
                        && child_dist(0) == &Dist::Sorted(lcols.clone())
                    {
                        elided = true;
                        None
                    } else {
                        Some(range_exchange(lcols, lbytes.max(rbytes)))
                    };
                    let rx = if ctx.shuffle_elimination
                        && child_dist(1) == &Dist::Sorted(rcols.clone())
                    {
                        elided = true;
                        None
                    } else {
                        Some(range_exchange(rcols, lbytes.max(rbytes)))
                    };
                    mk(
                        PhysicalOp::MergeJoin {
                            kind: *jk,
                            on: on.clone(),
                        },
                        vec![lx, rx],
                        vec![None, None],
                        elided,
                    )
                }
                Some(ImplKind::BroadcastJoin) => {
                    // Only worthwhile (and allowed) for small build sides.
                    if child_stats(1).estimated_bytes() > ctx.opts.broadcast_threshold_bytes {
                        return None;
                    }
                    mk(
                        PhysicalOp::BroadcastJoin {
                            kind: *jk,
                            on: on.clone(),
                        },
                        vec![
                            None,
                            Some(ExchangeSpec {
                                scheme: Partitioning::Broadcast,
                                sorted: false,
                                compressed: ctx.compression,
                            }),
                        ],
                        vec![None, None],
                        false,
                    )
                }
                Some(ImplKind::NestedLoopJoin) => {
                    let (lrows, rrows) =
                        (child_stats(0).rows.estimated, child_stats(1).rows.estimated);
                    if lrows * rrows > ctx.opts.nested_loop_limit {
                        return None;
                    }
                    let gather = || {
                        Some(ExchangeSpec {
                            scheme: Partitioning::Gather,
                            sorted: false,
                            compressed: ctx.compression,
                        })
                    };
                    mk(
                        PhysicalOp::HashJoin {
                            kind: *jk,
                            on: on.clone(),
                        },
                        vec![gather(), gather()],
                        vec![None, None],
                        false,
                    )
                }
                _ => None,
            }
        }
        (LogicalOp::Aggregate { group_by, aggs, .. }, akind) => {
            let bytes = child_stats(0).estimated_bytes();
            let keyed = !group_by.is_empty();
            let key_exchange = |compressed_ctx: &ImplContext<'_>| {
                if keyed {
                    hash_exchange(group_by.clone(), bytes)
                } else {
                    ExchangeSpec {
                        scheme: Partitioning::Gather,
                        sorted: false,
                        compressed: compressed_ctx.compression,
                    }
                }
            };
            match akind {
                Some(ImplKind::HashAgg) | None => {
                    let mut elided = false;
                    let x = if ctx.shuffle_elimination
                        && keyed
                        && child_dist(0) == &Dist::Hash(group_by.clone())
                    {
                        elided = true;
                        None
                    } else {
                        Some(key_exchange(ctx))
                    };
                    mk(
                        PhysicalOp::HashAggregate {
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                            mode: AggMode::Single,
                        },
                        vec![x],
                        vec![None],
                        elided,
                    )
                }
                Some(ImplKind::StreamAgg) => {
                    if !keyed {
                        return None;
                    }
                    mk(
                        PhysicalOp::StreamAggregate {
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                            mode: AggMode::Single,
                        },
                        vec![Some(range_exchange(group_by.clone(), bytes))],
                        vec![None],
                        false,
                    )
                }
                Some(ImplKind::AggSplitLocalGlobal) => {
                    if !keyed || !aggs.iter().all(|a| a.func.decomposable()) {
                        return None;
                    }
                    mk(
                        PhysicalOp::HashAggregate {
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                            mode: AggMode::Final,
                        },
                        vec![Some(hash_exchange(group_by.clone(), bytes))],
                        vec![Some(PreLocal::PartialAgg)],
                        false,
                    )
                }
                _ => None,
            }
        }
        (LogicalOp::Sort { keys }, Some(ImplKind::Sort) | None) => {
            let cols: Vec<usize> = keys.iter().map(|k| k.column).collect();
            let bytes = child_stats(0).estimated_bytes();
            let mut elided = false;
            let x = if ctx.shuffle_elimination && child_dist(0) == &Dist::Sorted(cols.clone()) {
                elided = true;
                None
            } else {
                Some(range_exchange(cols, bytes))
            };
            mk(
                PhysicalOp::SortExec { keys: keys.clone() },
                vec![x],
                vec![None],
                elided,
            )
        }
        (LogicalOp::Top { k, keys }, Some(ImplKind::TopN) | None) => mk(
            PhysicalOp::TopNExec {
                k: *k,
                keys: keys.clone(),
            },
            vec![Some(ExchangeSpec {
                scheme: Partitioning::Gather,
                sorted: true,
                compressed: ctx.compression,
            })],
            vec![Some(PreLocal::LocalTopK(*k))],
            false,
        ),
        (
            LogicalOp::Window {
                partition_by,
                funcs,
            },
            Some(ImplKind::Window) | None,
        ) => {
            let bytes = child_stats(0).estimated_bytes();
            mk(
                PhysicalOp::WindowExec {
                    partition_by: partition_by.clone(),
                    funcs: funcs.clone(),
                },
                vec![Some(hash_exchange(partition_by.clone(), bytes))],
                vec![None],
                false,
            )
        }
        (
            LogicalOp::Process {
                udf, cpu_factor, ..
            },
            Some(ImplKind::Process) | None,
        ) => mk(
            PhysicalOp::ProcessExec {
                udf: udf.clone(),
                cpu_factor: *cpu_factor,
            },
            vec![None],
            vec![None],
            false,
        ),
        (LogicalOp::Union, Some(ImplKind::UnionAll) | None) => {
            let n = children.len();
            mk(
                PhysicalOp::UnionAllExec,
                vec![None; n],
                vec![None; n],
                false,
            )
        }
        (LogicalOp::Output { path }, Some(ImplKind::Output) | None) => mk(
            PhysicalOp::OutputExec { path: path.clone() },
            vec![None],
            vec![None],
            false,
        ),
        _ => None,
    }
}

/// Whether a parametric spec's target matches a logical operator. Join
/// parametric variants only decorate inner-join implementations (semi joins
/// introduced by rewrites keep canonical implementations).
#[must_use]
pub fn parametric_matches(spec: &ParametricSpec, op: &LogicalOp) -> bool {
    spec.target == op.tag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleBits;
    use crate::registry::RuleSet;
    use crate::search::SearchOptions;
    use scope_ir::expr::ScalarExpr;
    use scope_ir::logical::{JoinKind, TableRef};
    use scope_ir::schema::{Column, DataType, Schema};
    use scope_ir::stats::DualStats;

    fn ctx<'a>(rules: &'a RuleSet, opts: &'a SearchOptions) -> ImplContext<'a> {
        ImplContext {
            rules,
            opts,
            shuffle_elimination: true,
            compression: false,
            template_seed: 42,
        }
    }

    fn scan(memo: &mut Memo, name: &str, rows: f64, row_len: u16) -> GroupId {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::String { avg_len: row_len }),
        ]);
        memo.intern(
            LogicalOp::Extract {
                table: TableRef::new(name, schema, DualStats::exact(rows)),
            },
            vec![],
            RuleBits::empty(),
        )
    }

    fn rule_named<'a>(rules: &'a RuleSet, name: &str) -> &'a RuleDef {
        rules.rules().iter().find(|r| r.name == name).unwrap()
    }

    #[test]
    fn choose_partitions_is_pow2_and_clamped() {
        let opts = SearchOptions::default(); // 64 MB per partition
        assert_eq!(choose_partitions(1e6, &opts, 1.0), 1);
        assert_eq!(choose_partitions(2e8, &opts, 1.0), 4);
        assert_eq!(choose_partitions(1e14, &opts, 1.0), opts.max_partitions);
        // Parallelism knob halves/doubles.
        assert_eq!(choose_partitions(2e8, &opts, 2.0), 8);
        assert_eq!(choose_partitions(2e8, &opts, 0.5), 2);
    }

    #[test]
    fn hash_join_impl_adds_exchanges_on_both_sides() {
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e7, 20);
        let b = scan(&mut memo, "b", 1e7, 20);
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-7),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        let p = implement_expr(
            rule_named(&rules, "HashJoinImpl"),
            &memo,
            j,
            0,
            &ctx(&rules, &opts),
        )
        .unwrap();
        assert!(matches!(p.op, PhysicalOp::HashJoin { .. }));
        assert!(p.exchanges[0].is_some());
        assert!(p.exchanges[1].is_some());
        assert!(!p.elided_exchange);
    }

    #[test]
    fn broadcast_join_requires_small_build_side() {
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e8, 40);
        let small = scan(&mut memo, "s", 1000.0, 10);
        let big = scan(&mut memo, "bigt", 1e8, 40);
        let j_small = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-8),
            },
            vec![a, small],
            RuleBits::empty(),
        );
        let j_big = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-8),
            },
            vec![a, big],
            RuleBits::empty(),
        );
        let c = ctx(&rules, &opts);
        let bc = rule_named(&rules, "BroadcastJoinImpl");
        let ok = implement_expr(bc, &memo, j_small, 0, &c).unwrap();
        assert!(ok.exchanges[0].is_none(), "probe side stays in place");
        assert!(matches!(
            ok.exchanges[1].as_ref().unwrap().scheme,
            Partitioning::Broadcast
        ));
        assert!(
            implement_expr(bc, &memo, j_big, 0, &c).is_none(),
            "big side not broadcast"
        );
    }

    #[test]
    fn shuffle_elimination_skips_exchange_when_distribution_matches() {
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e7, 20);
        let b = scan(&mut memo, "b", 1e7, 20);
        // First join partitions output on left key 0.
        let j1 = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-7),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        // Aggregate on column 0 of the join output: already hash-distributed.
        let g = memo.intern(
            LogicalOp::Aggregate {
                group_by: vec![0],
                aggs: vec![],
                group_ratio: DualStats::exact(0.01),
            },
            vec![j1],
            RuleBits::empty(),
        );
        let c = ctx(&rules, &opts);
        let p = implement_expr(rule_named(&rules, "HashAggImpl"), &memo, g, 0, &c).unwrap();
        assert!(p.exchanges[0].is_none(), "exchange eliminated");
        assert!(p.elided_exchange);
        // With the policy off, the exchange is materialized.
        let mut c_off = ctx(&rules, &opts);
        c_off.shuffle_elimination = false;
        let p2 = implement_expr(rule_named(&rules, "HashAggImpl"), &memo, g, 0, &c_off).unwrap();
        assert!(p2.exchanges[0].is_some());
    }

    #[test]
    fn agg_split_requires_decomposable_aggregates() {
        use scope_ir::expr::{AggExpr, AggFunc};
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e7, 20);
        let ok = memo.intern(
            LogicalOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggExpr::new(AggFunc::Sum, Some(0), "s")],
                group_ratio: DualStats::exact(0.01),
            },
            vec![a],
            RuleBits::empty(),
        );
        let bad = memo.intern(
            LogicalOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggExpr::new(AggFunc::CountDistinct, Some(1), "d")],
                group_ratio: DualStats::exact(0.01),
            },
            vec![a],
            RuleBits::empty(),
        );
        let c = ctx(&rules, &opts);
        let split = rule_named(&rules, "AggSplitLocalGlobal");
        let p = implement_expr(split, &memo, ok, 0, &c).unwrap();
        assert_eq!(p.pre_local[0], Some(PreLocal::PartialAgg));
        assert!(matches!(
            p.op,
            PhysicalOp::HashAggregate {
                mode: AggMode::Final,
                ..
            }
        ));
        assert!(implement_expr(split, &memo, bad, 0, &c).is_none());
    }

    #[test]
    fn parametric_rule_carries_claimed_and_actual_tuning() {
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e6, 20);
        let f = memo.intern(
            LogicalOp::Filter {
                predicate: ScalarExpr::lit_int(1),
                selectivity: DualStats::exact(0.5),
            },
            vec![a],
            RuleBits::empty(),
        );
        let c = ctx(&rules, &opts);
        // Find a parametric rule targeting Filter.
        let prule = rules
            .rules()
            .iter()
            .find(|r| matches!(&r.behavior, RuleBehavior::Parametric(s) if s.target == "Filter"))
            .unwrap();
        let p = implement_expr(prule, &memo, f, 0, &c).unwrap();
        assert!(!p.claimed.is_identity());
        assert_eq!(p.actual, rules.actual_tuning(prule.id, 42));
        assert!(p.provenance.contains(prule.id));
    }

    #[test]
    fn fallback_applies_penalty_tuning() {
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e6, 20);
        let c = ctx(&rules, &opts);
        let fb = rule_named(&rules, "FallbackExec");
        let p = implement_expr(fb, &memo, a, 0, &c).unwrap();
        assert!((p.claimed.cpu_mult - opts.fallback_cpu_penalty).abs() < 1e-12);
        assert!(matches!(p.op, PhysicalOp::TableScan { .. }));
    }

    #[test]
    fn stream_agg_needs_keys() {
        let rules = RuleSet::standard();
        let opts = SearchOptions::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 1e6, 20);
        let global = memo.intern(
            LogicalOp::Aggregate {
                group_by: vec![],
                aggs: vec![],
                group_ratio: DualStats::exact(1e-6),
            },
            vec![a],
            RuleBits::empty(),
        );
        let c = ctx(&rules, &opts);
        assert!(
            implement_expr(rule_named(&rules, "StreamAggImpl"), &memo, global, 0, &c).is_none()
        );
        // HashAgg on a global aggregate gathers to one partition.
        let p = implement_expr(rule_named(&rules, "HashAggImpl"), &memo, global, 0, &c).unwrap();
        assert!(matches!(
            p.exchanges[0].as_ref().unwrap().scheme,
            Partitioning::Gather
        ));
    }
}

//! Compile-time hints: per-template single rule flips, as produced by the
//! QO-Advisor pipeline and served through SIS.

use crate::config::{RuleConfig, RuleFlip};
use rustc_hash::FxHashMap;
use scope_ir::TemplateId;
use serde::{Deserialize, Serialize};

/// One steering hint: apply `flip` to every job matching `template`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hint {
    pub template: TemplateId,
    pub flip: RuleFlip,
}

/// An in-memory set of hints keyed by template, consulted by the engine at
/// compile time. SIS wraps this with versioned persistence.
#[derive(Debug, Clone, Default)]
pub struct HintSet {
    by_template: FxHashMap<TemplateId, RuleFlip>,
}

impl HintSet {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_hints(hints: impl IntoIterator<Item = Hint>) -> Self {
        let mut set = Self::default();
        for h in hints {
            set.insert(h);
        }
        set
    }

    /// Insert or replace the hint for a template.
    pub fn insert(&mut self, hint: Hint) {
        self.by_template.insert(hint.template, hint.flip);
    }

    pub fn remove(&mut self, template: TemplateId) -> Option<RuleFlip> {
        self.by_template.remove(&template)
    }

    #[must_use]
    pub fn lookup(&self, template: TemplateId) -> Option<RuleFlip> {
        self.by_template.get(&template).copied()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.by_template.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_template.is_empty()
    }

    /// The installed hints as a list sorted by template id — the canonical
    /// export order for snapshots and diffs (the backing map is unordered).
    #[must_use]
    pub fn hints(&self) -> Vec<Hint> {
        let mut hints: Vec<Hint> = self
            .by_template
            // qo-lint: allow(unordered-iter) — collected and sorted by template below
            .iter()
            .map(|(&template, &flip)| Hint { template, flip })
            .collect();
        hints.sort_by_key(|h| h.template);
        hints
    }

    /// The effective configuration for a job: default plus the matching
    /// hint's flip, if any.
    #[must_use]
    pub fn config_for(&self, template: TemplateId, default: &RuleConfig) -> RuleConfig {
        match self.lookup(template) {
            Some(flip) => default.with_flip(flip),
            None => *default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RuleBits, RuleId};

    fn flip(rule: u16, enable: bool) -> RuleFlip {
        RuleFlip {
            rule: RuleId(rule),
            enable,
        }
    }

    #[test]
    fn lookup_and_config_application() {
        let mut set = HintSet::new();
        set.insert(Hint {
            template: TemplateId(1),
            flip: flip(21, true),
        });
        let default = RuleConfig::from_bits(RuleBits::empty());
        let cfg = set.config_for(TemplateId(1), &default);
        assert!(cfg.enabled(RuleId(21)));
        // Unmatched template keeps the default.
        let cfg2 = set.config_for(TemplateId(2), &default);
        assert_eq!(cfg2, default);
    }

    #[test]
    fn insert_replaces_existing_hint() {
        let mut set = HintSet::new();
        set.insert(Hint {
            template: TemplateId(1),
            flip: flip(21, true),
        });
        set.insert(Hint {
            template: TemplateId(1),
            flip: flip(22, false),
        });
        assert_eq!(set.len(), 1);
        assert_eq!(set.lookup(TemplateId(1)), Some(flip(22, false)));
    }

    #[test]
    fn hints_are_sorted_by_template() {
        let set = HintSet::from_hints([
            Hint {
                template: TemplateId(9),
                flip: flip(1, true),
            },
            Hint {
                template: TemplateId(3),
                flip: flip(2, false),
            },
        ]);
        let hints = set.hints();
        assert_eq!(hints[0].template, TemplateId(3));
        assert_eq!(hints[1].template, TemplateId(9));
    }

    #[test]
    fn remove_clears_hint() {
        let mut set = HintSet::from_hints([Hint {
            template: TemplateId(5),
            flip: flip(7, true),
        }]);
        assert!(set.remove(TemplateId(5)).is_some());
        assert!(set.is_empty());
        assert!(set.remove(TemplateId(5)).is_none());
    }
}

//! A/A testing: re-run the *same* configuration repeatedly to measure the
//! cluster's intrinsic variance (paper §5.1, Figures 3 and 5).

use scope_ir::ids::aa_run_seed;
use scope_ir::physical::PhysicalPlan;
use scope_runtime::{ExecutionMetrics, Executor};

/// Run a compiled plan `n` times with fresh run seeds. Generic over
/// [`Executor`]: the A/A seed schedule is fixed, so re-probing the same plan
/// through a `scope_runtime::CachingExecutor` replays earlier runs instead
/// of re-simulating them.
#[must_use]
pub fn run_aa<E: Executor>(
    plan: &PhysicalPlan,
    executor: &E,
    job_seed: u64,
    n: usize,
) -> Vec<ExecutionMetrics> {
    (0..n)
        .map(|i| executor.execute(plan, job_seed, aa_run_seed(i as u64)))
        .collect()
}

/// Coefficient of variation (stddev / mean) of a metric across runs.
#[must_use]
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean.abs() < 1e-12 {
        return 0.0;
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_lang::{bind_script, Catalog};
    use scope_opt::Optimizer;
    use scope_runtime::Cluster;

    fn compiled() -> PhysicalPlan {
        let src = r#"
            t = EXTRACT k:int, v:float FROM "data/t";
            f = SELECT k, v FROM t WHERE v > 5;
            a = SELECT k, SUM(v) AS s FROM f GROUP BY k;
            OUTPUT a TO "out/a";
        "#;
        let plan = bind_script(src, &Catalog::default()).unwrap();
        let opt = Optimizer::default();
        opt.compile(&plan, &opt.default_config()).unwrap().physical
    }

    #[test]
    fn aa_runs_share_data_volume_but_not_latency() {
        let plan = compiled();
        let runs = run_aa(&plan, &Cluster::default(), 9, 10);
        // A cached executor replays the identical A/A series.
        let cached = scope_runtime::CachingExecutor::with_config(
            Cluster::default(),
            scope_runtime::ExecCacheConfig::default(),
        );
        let warmup = run_aa(&plan, &cached, 9, 10);
        let replay = run_aa(&plan, &cached, 9, 10);
        assert_eq!(runs, warmup);
        assert_eq!(runs, replay);
        assert_eq!(cached.stats().results.hits, 10, "the re-probe is free");
        assert_eq!(runs.len(), 10);
        let first = &runs[0];
        for r in &runs[1..] {
            assert_eq!(r.data_read, first.data_read, "A/A reads identical data");
            assert_eq!(r.vertices, first.vertices);
        }
        let latencies: Vec<f64> = runs.iter().map(|r| r.latency_sec).collect();
        assert!(coefficient_of_variation(&latencies) > 0.0);
    }

    #[test]
    fn cv_of_constant_series_is_zero() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[5.0]), 0.0);
    }

    #[test]
    fn cv_measures_relative_spread() {
        let tight = coefficient_of_variation(&[100.0, 101.0, 99.0]);
        let wide = coefficient_of_variation(&[100.0, 150.0, 50.0]);
        assert!(wide > tight * 5.0);
    }
}

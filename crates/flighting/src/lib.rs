// Flighting sits on the steering path: typed errors / failure outcomes
// instead of panics (qo-lint rule QL05); tests may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! The Flighting Service: SCOPE's pre-production A/B testing infrastructure
//! (paper §2.1, §4.3).
//!
//! Flighting re-runs jobs in a pre-production environment under different
//! engine configurations and compares them with the default. It is the
//! single largest resource consumer in QO-Advisor, so the service enforces:
//! a fixed-size queue, a per-job time cap (24 simulated hours), and a total
//! time budget. Each flighted job yields one of four outcomes — success,
//! timeout, failure (e.g. expired inputs), or filtered (unsupported job
//! classes) — exactly the §4.3 taxonomy.

pub mod aa;
pub mod budget;
pub mod outcome;
pub mod service;

pub use aa::run_aa;
pub use budget::{BudgetTracker, FlightBudget};
pub use outcome::{FlightMeasurement, FlightOutcome};
pub use service::{FlightRequest, FlightingService};

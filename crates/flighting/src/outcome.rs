//! Flight outcomes and A/B measurements.

use scope_runtime::ExecutionMetrics;
use serde::{Deserialize, Serialize};

/// The A/B measurement of one successful flight: one baseline run and one
/// treatment run of the same job in pre-production.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightMeasurement {
    pub baseline: ExecutionMetrics,
    pub treatment: ExecutionMetrics,
}

impl FlightMeasurement {
    /// PNhours delta (treatment vs baseline; negative = improvement).
    #[must_use]
    pub fn pn_delta(&self) -> f64 {
        self.treatment.pn_delta(&self.baseline)
    }

    #[must_use]
    pub fn latency_delta(&self) -> f64 {
        self.treatment.latency_delta(&self.baseline)
    }

    #[must_use]
    pub fn vertices_delta(&self) -> f64 {
        self.treatment.vertices_delta(&self.baseline)
    }

    /// DataRead delta — the validation model's primary regressor (§4.3).
    #[must_use]
    pub fn data_read_delta(&self) -> f64 {
        self.treatment.data_read_delta(&self.baseline)
    }

    /// DataWritten delta — the validation model's second regressor (§4.3).
    #[must_use]
    pub fn data_written_delta(&self) -> f64 {
        self.treatment.data_written_delta(&self.baseline)
    }
}

/// Outcome of one flighting request (§4.3: "failure ... timeout ...
/// filtered ... success").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlightOutcome {
    Success(FlightMeasurement),
    /// Ran out of per-job or total time budget.
    Timeout,
    /// Job information or input data expired, or the treatment failed to
    /// compile.
    Failure(String),
    /// Job class unsupported by the Flighting Service.
    Filtered,
}

impl FlightOutcome {
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, FlightOutcome::Success(_))
    }

    #[must_use]
    pub fn measurement(&self) -> Option<&FlightMeasurement> {
        match self {
            FlightOutcome::Success(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_follow_paper_convention() {
        let m = FlightMeasurement {
            baseline: ExecutionMetrics {
                pn_hours: 10.0,
                data_read: 100.0,
                ..Default::default()
            },
            treatment: ExecutionMetrics {
                pn_hours: 8.0,
                data_read: 70.0,
                ..Default::default()
            },
        };
        assert!((m.pn_delta() + 0.2).abs() < 1e-12);
        assert!((m.data_read_delta() + 0.3).abs() < 1e-12);
    }

    #[test]
    fn outcome_classification() {
        let m = FlightMeasurement {
            baseline: ExecutionMetrics::default(),
            treatment: ExecutionMetrics::default(),
        };
        assert!(FlightOutcome::Success(m).is_success());
        assert!(!FlightOutcome::Timeout.is_success());
        assert!(FlightOutcome::Success(m).measurement().is_some());
        assert!(FlightOutcome::Filtered.measurement().is_none());
    }
}

//! Flighting budgets: per-job cap, total time budget, queue size (§4.3).

use serde::{Deserialize, Serialize};

/// Budget configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightBudget {
    /// Maximum simulated seconds one flight may take (paper: 24 hours).
    pub max_job_seconds: f64,
    /// Total simulated seconds available across all flights.
    pub total_seconds: f64,
    /// Fixed queue size — at most this many jobs are accepted per batch.
    pub queue_size: usize,
}

impl Default for FlightBudget {
    fn default() -> Self {
        Self {
            max_job_seconds: 24.0 * 3600.0,
            total_seconds: 40.0 * 24.0 * 3600.0,
            queue_size: 64,
        }
    }
}

/// Running budget accounting.
#[derive(Debug, Clone, Default)]
pub struct BudgetTracker {
    pub used_seconds: f64,
    pub flights_run: usize,
    pub flights_rejected: usize,
}

impl BudgetTracker {
    /// Try to charge `seconds` against the budget: returns false (and counts
    /// a rejection) when the total budget would be exceeded.
    pub fn try_charge(&mut self, seconds: f64, budget: &FlightBudget) -> bool {
        if self.used_seconds + seconds > budget.total_seconds {
            self.flights_rejected += 1;
            return false;
        }
        self.used_seconds += seconds;
        self.flights_run += 1;
        true
    }

    #[must_use]
    pub fn remaining(&self, budget: &FlightBudget) -> f64 {
        (budget.total_seconds - self.used_seconds).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_respects_total_budget() {
        let budget = FlightBudget {
            max_job_seconds: 100.0,
            total_seconds: 250.0,
            queue_size: 8,
        };
        let mut t = BudgetTracker::default();
        assert!(t.try_charge(100.0, &budget));
        assert!(t.try_charge(100.0, &budget));
        assert!(!t.try_charge(100.0, &budget), "third flight exceeds total");
        assert_eq!(t.flights_run, 2);
        assert_eq!(t.flights_rejected, 1);
        assert!((t.remaining(&budget) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn default_budget_matches_paper_thresholds() {
        let b = FlightBudget::default();
        assert!(
            (b.max_job_seconds - 86_400.0).abs() < 1e-9,
            "24-hour per-job cap"
        );
        assert!(b.queue_size > 0);
    }
}

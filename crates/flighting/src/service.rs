//! The flighting service proper: queued A/B runs under budget.

use crate::budget::{BudgetTracker, FlightBudget};
use crate::outcome::{FlightMeasurement, FlightOutcome};
use scope_ir::ids::{flight_baseline_run_seed, flight_treatment_run_seed, preflight_draw};
use scope_ir::logical::LogicalPlan;
use scope_ir::TemplateId;
use scope_opt::{Compiler, RuleConfig};
use scope_runtime::{Cluster, Executor};
use std::sync::Arc;

/// One flighting request: a job and the two configurations to compare.
#[derive(Debug, Clone)]
pub struct FlightRequest {
    pub template: TemplateId,
    pub plan: Arc<LogicalPlan>,
    pub job_seed: u64,
    pub baseline: RuleConfig,
    pub treatment: RuleConfig,
}

/// The pre-production flighting environment.
#[derive(Debug)]
pub struct FlightingService {
    /// Descriptor of the pre-production cluster flights run on. Execution
    /// itself goes through the [`Executor`] handed to
    /// [`FlightingService::flight_batch`], so a shared execution cache can
    /// sit behind it; callers build that executor from this cluster (see
    /// `qo_advisor::QoAdvisor`).
    cluster: Cluster,
    budget: FlightBudget,
    /// Deterministic per-batch salt so different days see fresh noise.
    batch_salt: u64,
}

impl FlightingService {
    #[must_use]
    pub fn new(cluster: Cluster, budget: FlightBudget) -> Self {
        Self {
            cluster,
            budget,
            batch_salt: 0,
        }
    }

    /// The pre-production cluster this service describes (what flight
    /// executors should be built over).
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    #[must_use]
    pub fn budget(&self) -> &FlightBudget {
        &self.budget
    }

    /// The current batch salt — the service's only cross-day RNG position
    /// (incremented once per [`FlightingService::flight_batch`]), exported
    /// into snapshots so a restored process draws the same preflight and
    /// flight noise the uninterrupted one would have.
    #[must_use]
    pub fn batch_salt(&self) -> u64 {
        self.batch_salt
    }

    /// Restore the batch salt from a snapshot (`scope-state`).
    pub fn restore_batch_salt(&mut self, batch_salt: u64) {
        self.batch_salt = batch_salt;
    }

    /// Probability-8% deterministic "inputs expired" failures and
    /// probability-7% unsupported job classes, drawn per (job, batch).
    fn preflight_outcome(&self, job_seed: u64) -> Option<FlightOutcome> {
        let u = (preflight_draw(job_seed, self.batch_salt) >> 11) as f64 / (1u64 << 53) as f64;
        if u < 0.08 {
            return Some(FlightOutcome::Failure("job inputs expired".into()));
        }
        if u < 0.15 {
            return Some(FlightOutcome::Filtered);
        }
        None
    }

    /// Flight a batch of requests **in the given order** (callers order by
    /// estimated cost delta so the most promising jobs flight first, §4.3).
    /// Returns one outcome per request plus the final budget accounting.
    /// Generic over [`Compiler`] and [`Executor`]: passing a
    /// `CachingOptimizer` lets the validation recompiles reuse the
    /// pipeline's compile-result cache, and passing a
    /// `scope_runtime::CachingExecutor` lets the baseline/treatment runs
    /// share its execution cache (the baseline plan is usually the very
    /// default plan the production view already executed, so at least its
    /// stage graph is a lookup).
    pub fn flight_batch<C: Compiler, E: Executor>(
        &mut self,
        optimizer: &C,
        executor: &E,
        requests: &[FlightRequest],
    ) -> (Vec<FlightOutcome>, BudgetTracker) {
        debug_assert_eq!(
            executor.cluster().epoch(),
            self.cluster.epoch(),
            "flight executor runs on a different cluster than the service \
             describes — flights would be measured under the wrong noise"
        );
        self.batch_salt = self.batch_salt.wrapping_add(1);
        let mut tracker = BudgetTracker::default();
        let mut outcomes = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            // Queue size bounds how many jobs even enter the system.
            if i >= self.budget.queue_size {
                outcomes.push(FlightOutcome::Timeout);
                continue;
            }
            if let Some(out) = self.preflight_outcome(req.job_seed) {
                outcomes.push(out);
                continue;
            }
            // Both arms must compile in pre-production. The treatment goes
            // through the slate API: a `CachingOptimizer` with delta
            // compilation enabled prices it against the baseline
            // configuration's shared base memo (byte-identical to a
            // from-scratch compile — usually it is already a compile-cache
            // hit anyway, because recommendation priced the same
            // `(plan, treatment)` pair earlier the same day).
            let baseline = match optimizer.compile(&req.plan, &req.baseline) {
                Ok(c) => c,
                Err(e) => {
                    outcomes.push(FlightOutcome::Failure(format!("baseline: {e}")));
                    continue;
                }
            };
            let treatment = match optimizer
                .compile_slate(
                    &req.plan,
                    &req.baseline,
                    std::slice::from_ref(&req.treatment),
                )
                .pop()
            {
                Some(Ok(c)) => c,
                Some(Err(e)) => {
                    outcomes.push(FlightOutcome::Failure(format!("treatment: {e}")));
                    continue;
                }
                // The slate contract is one result per treatment; a missing
                // entry is a compiler bug, reported as a failed flight
                // rather than a panic in the steering path.
                None => {
                    outcomes.push(FlightOutcome::Failure(
                        "treatment: slate compiler returned no result".to_string(),
                    ));
                    continue;
                }
            };
            let run_a = flight_baseline_run_seed(req.job_seed, self.batch_salt);
            let run_b = flight_treatment_run_seed(req.job_seed, self.batch_salt);
            let base_m = executor.execute(&baseline.physical, req.job_seed, run_a);
            let treat_m = executor.execute(&treatment.physical, req.job_seed, run_b);
            let elapsed = base_m.latency_sec + treat_m.latency_sec;
            if base_m.latency_sec > self.budget.max_job_seconds
                || treat_m.latency_sec > self.budget.max_job_seconds
            {
                // Charge what we burned discovering the timeout.
                let capped = elapsed.min(2.0 * self.budget.max_job_seconds);
                let _ = tracker.try_charge(capped, &self.budget);
                outcomes.push(FlightOutcome::Timeout);
                continue;
            }
            if !tracker.try_charge(elapsed, &self.budget) {
                outcomes.push(FlightOutcome::Timeout);
                continue;
            }
            outcomes.push(FlightOutcome::Success(FlightMeasurement {
                baseline: base_m,
                treatment: treat_m,
            }));
        }
        (outcomes, tracker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_opt::{Optimizer, RuleFlip};
    use scope_workload::{Workload, WorkloadConfig};

    fn requests(n: usize) -> (Optimizer, Vec<FlightRequest>) {
        let optimizer = Optimizer::default();
        let w = Workload::new(WorkloadConfig {
            seed: 31,
            num_templates: n,
            adhoc_per_day: 0,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        let default = optimizer.default_config();
        let reqs = w
            .jobs_for_day(0)
            .into_iter()
            .map(|j| FlightRequest {
                template: j.template,
                plan: j.plan,
                job_seed: j.job_seed,
                baseline: default,
                // Flip an off-by-default transform on.
                treatment: default.with_flip(RuleFlip {
                    rule: scope_opt::RuleId(21),
                    enable: true,
                }),
            })
            .collect();
        (optimizer, reqs)
    }

    #[test]
    fn successful_flights_return_measurements() {
        let (optimizer, reqs) = requests(12);
        let mut svc = FlightingService::new(Cluster::default(), FlightBudget::default());
        let (outcomes, tracker) = svc.flight_batch(&optimizer, &Cluster::default(), &reqs);
        assert_eq!(outcomes.len(), reqs.len());
        let successes = outcomes.iter().filter(|o| o.is_success()).count();
        assert!(
            successes > 0,
            "most flights succeed under a generous budget"
        );
        assert!(tracker.used_seconds > 0.0);
        for o in &outcomes {
            if let FlightOutcome::Success(m) = o {
                assert!(m.baseline.pn_hours > 0.0);
                assert!(m.treatment.pn_hours > 0.0);
            }
        }
    }

    #[test]
    fn tight_budget_times_out_tail_jobs() {
        let (optimizer, reqs) = requests(14);
        let mut svc = FlightingService::new(
            Cluster::default(),
            FlightBudget {
                max_job_seconds: 86_400.0,
                total_seconds: 1_500.0,
                queue_size: 64,
            },
        );
        let (outcomes, tracker) = svc.flight_batch(&optimizer, &Cluster::default(), &reqs);
        let timeouts = outcomes
            .iter()
            .filter(|o| matches!(o, FlightOutcome::Timeout))
            .count();
        assert!(timeouts > 0, "tight budget must reject tail jobs");
        assert!(tracker.used_seconds <= 1_500.0 + 1e-9);
    }

    #[test]
    fn queue_size_caps_accepted_jobs() {
        let (optimizer, reqs) = requests(10);
        let mut svc = FlightingService::new(
            Cluster::default(),
            FlightBudget {
                queue_size: 3,
                ..FlightBudget::default()
            },
        );
        let (outcomes, _) = svc.flight_batch(&optimizer, &Cluster::default(), &reqs);
        let past_queue = &outcomes[3.min(outcomes.len())..];
        assert!(past_queue
            .iter()
            .all(|o| matches!(o, FlightOutcome::Timeout)));
    }

    #[test]
    fn some_jobs_fail_or_filter_deterministically() {
        let (optimizer, reqs) = requests(40);
        let mut svc = FlightingService::new(Cluster::default(), FlightBudget::default());
        let (outcomes, _) = svc.flight_batch(&optimizer, &Cluster::default(), &reqs);
        let failures = outcomes
            .iter()
            .filter(|o| matches!(o, FlightOutcome::Failure(_) | FlightOutcome::Filtered))
            .count();
        assert!(failures > 0, "≈15% of jobs fail or are filtered");
        assert!(failures < reqs.len() / 2);
    }

    #[test]
    fn batches_see_fresh_noise_but_service_is_deterministic() {
        let (optimizer, reqs) = requests(6);
        let run = || {
            let mut svc = FlightingService::new(Cluster::default(), FlightBudget::default());
            let (o1, _) = svc.flight_batch(&optimizer, &Cluster::default(), &reqs);
            let (o2, _) = svc.flight_batch(&optimizer, &Cluster::default(), &reqs);
            (o1, o2)
        };
        let (a1, a2) = run();
        let (b1, b2) = run();
        // Same service state sequence => same outcomes.
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        // Different batches see different noise: at least one measurement
        // differs between batch 1 and batch 2.
        let pair_differs = a1.iter().zip(a2.iter()).any(|(x, y)| match (x, y) {
            (FlightOutcome::Success(mx), FlightOutcome::Success(my)) => {
                (mx.baseline.latency_sec - my.baseline.latency_sec).abs() > 1e-9
            }
            _ => x != y,
        });
        assert!(pair_differs);
    }
}

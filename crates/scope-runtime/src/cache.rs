//! Sharded, concurrent execution-result cache — the execution-side mirror of
//! `scope_opt`'s compile-result cache.
//!
//! The steering loop re-executes the same physical plans over and over: the
//! production view runs a recurring script's plan every day, counterfactual
//! default runs replay the default plan beside every hinted run, flighting
//! executes the baseline plan the view already ran, and A/A probes re-run one
//! plan with a fixed seed schedule. Execution is deterministic — the metrics
//! depend only on the plan bytes, the cluster model, and `(job_seed,
//! run_seed)` — so those tuples are perfect cache keys: a cached run is
//! bit-identical to a fresh one.
//!
//! [`ExecutionCache`] memoizes at two levels, both N-way lock-sharded:
//!
//! * **stage graphs** keyed by `(plan fingerprint, hardware epoch)` — every
//!   uncached `execute` call rebuilds the stage graph even for a plan it has
//!   executed before, and the graph depends only on the plan and the
//!   [`ClusterConfig`], so graphs are shared even across clusters that
//!   differ only in noise (production vs pre-production);
//! * **execution metrics** keyed by `(plan fingerprint, job_seed, run_seed,
//!   cluster epoch)` — the full result of one simulated run, replayed on
//!   repeat executions (the cluster epoch folds in the variance model, so
//!   environments never cross-contaminate).
//!
//! [`CachingExecutor`] packages a [`Cluster`] with an optional shared cache
//! behind the [`Executor`] trait, so view building, counterfactual runs,
//! flighting, and probes all share one cache without caring whether it is
//! enabled — exactly how `CachingOptimizer` sits behind the `Compiler`
//! trait on the compile side.

use crate::cluster::{Cluster, ClusterConfig};
use crate::executor::{execute, execute_stages, Executor};
use crate::metrics::ExecutionMetrics;
use crate::stage::StageGraph;
use scope_ir::counters::CacheStats;
use scope_ir::ids::mix64;
use scope_ir::physical::PhysicalPlan;
use scope_ir::sharded::ShardedCache;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of the execution-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecCacheConfig {
    /// Master switch. Disabled, every execution goes straight to the
    /// simulator (the pre-cache behavior, bit-for-bit).
    pub enabled: bool,
    /// Maximum cached execution results across all shards (`0` = unbounded).
    pub capacity: usize,
    /// Maximum memoized stage graphs across all shards (`0` = unbounded).
    /// Bounded separately because one graph serves many `(seeds, epoch)`
    /// results and graphs are the heavier objects.
    pub graph_capacity: usize,
    /// Lock shards (rounded up to a power of two, clamped to 1..=1024).
    pub shards: usize,
}

impl Default for ExecCacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            // ExecutionMetrics is a flat 80-byte struct, so even the full
            // capacity is a few MB; sized for ~weeks of simulated days.
            capacity: 1 << 15,
            // One graph per distinct physical plan actually executed.
            graph_capacity: 1 << 13,
            shards: 16,
        }
    }
}

impl ExecCacheConfig {
    /// The cache turned off (executions go straight to the simulator).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Parse the shared `QO_EXEC_CACHE` / `--exec-cache` switch spellings
    /// (`on`/`1`/`true`, `off`/`0`/`false`) into a config, so every CLI
    /// entry point accepts the identical vocabulary.
    pub fn parse_switch(value: &str) -> Result<Self, String> {
        match value {
            "on" | "1" | "true" => Ok(Self::default()),
            "off" | "0" | "false" => Ok(Self::disabled()),
            other => Err(format!("expected on|off, got `{other}`")),
        }
    }
}

/// Counters of the two memo levels, snapshotted together. `results` counts
/// whole-run replays (each `execute` call is exactly one lookup); `graphs`
/// counts stage-graph memo lookups (consulted only on result misses, so
/// `graphs.lookups() == results.misses` for a purely cache-driven workload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Full execution-result replays.
    pub results: CacheStats,
    /// Stage-graph memoization.
    pub graphs: CacheStats,
}

impl ExecStats {
    /// Counter deltas relative to an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            results: self.results.since(&earlier.results),
            graphs: self.graphs.since(&earlier.graphs),
        }
    }

    /// Executions that consulted the cache (one per `execute` call).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.results.lookups()
    }

    /// Executions answered without running the simulator at all.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.results.hits
    }

    /// Fraction of executions that skipped *some* work: a full-result replay
    /// or at least a memoized stage graph.
    #[must_use]
    pub fn partial_hit_rate(&self) -> f64 {
        let lookups = self.results.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.results.hits + self.graphs.hits) as f64 / lookups as f64
        }
    }

    /// Fraction of executions answered entirely from cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.results.hit_rate()
    }
}

impl std::ops::Add for ExecStats {
    type Output = ExecStats;

    fn add(self, rhs: ExecStats) -> ExecStats {
        ExecStats {
            results: self.results + rhs.results,
            graphs: self.graphs + rhs.graphs,
        }
    }
}

impl std::iter::Sum for ExecStats {
    fn sum<I: Iterator<Item = ExecStats>>(iter: I) -> ExecStats {
        iter.fold(ExecStats::default(), std::ops::Add::add)
    }
}

/// Result key: exact plan identity + both seeds + the full-environment
/// epoch.
type ResultKey = (u64, u64, u64, u64);
/// Graph key: exact plan identity + the hardware-only epoch.
type GraphKey = (u64, u64);

fn result_key_hash(key: &ResultKey) -> u64 {
    mix64(mix64(key.0, key.1), mix64(key.2, key.3))
}

fn graph_key_hash(key: &GraphKey) -> u64 {
    mix64(key.0, key.1)
}

/// The sharded execution-result cache: two [`ShardedCache`]s (the
/// workspace-wide lock-sharded FIFO cache) — one per memo level — plus
/// hit/miss/insert accounting. `&ExecutionCache` is `Sync`; one instance is
/// shared (via `Arc`) by every [`CachingExecutor`] of a simulation —
/// production and pre-production alike — the way one `CompileCache` spans
/// every compile of the pipeline.
#[derive(Debug)]
pub struct ExecutionCache {
    results: ShardedCache<ResultKey, ExecutionMetrics>,
    graphs: ShardedCache<GraphKey, Arc<StageGraph>>,
    r_hits: AtomicU64,
    r_misses: AtomicU64,
    r_inserts: AtomicU64,
    g_hits: AtomicU64,
    g_misses: AtomicU64,
    g_inserts: AtomicU64,
}

impl ExecutionCache {
    #[must_use]
    pub fn new(config: ExecCacheConfig) -> Self {
        Self {
            results: ShardedCache::new(config.capacity, config.shards, result_key_hash),
            graphs: ShardedCache::new(config.graph_capacity, config.shards, graph_key_hash),
            r_hits: AtomicU64::new(0),
            r_misses: AtomicU64::new(0),
            r_inserts: AtomicU64::new(0),
            g_hits: AtomicU64::new(0),
            g_misses: AtomicU64::new(0),
            g_inserts: AtomicU64::new(0),
        }
    }

    /// Build a shareable cache per `config`, or `None` when disabled — the
    /// shape [`CachingExecutor::new`] and the pipeline plumbing consume.
    #[must_use]
    pub fn shared(config: ExecCacheConfig) -> Option<Arc<Self>> {
        config.enabled.then(|| Arc::new(Self::new(config)))
    }

    /// The memoized stage graph of `plan` on hardware `config` (epoch
    /// `config_epoch`), building and caching it on first sight.
    pub fn stage_graph(
        &self,
        plan: &PhysicalPlan,
        config_epoch: u64,
        config: &ClusterConfig,
    ) -> Arc<StageGraph> {
        let key = (plan.fingerprint(), config_epoch);
        if let Some(graph) = self.graphs.get(&key) {
            self.g_hits.fetch_add(1, Ordering::Relaxed);
            return graph;
        }
        self.g_misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock; concurrent misses on one key build the
        // identical graph (construction is deterministic), first writer
        // wins.
        let graph = Arc::new(StageGraph::build(plan, config));
        if self.graphs.insert(key, Arc::clone(&graph)) {
            self.g_inserts.fetch_add(1, Ordering::Relaxed);
        }
        graph
    }

    /// The cached execution entry point: replay the stored metrics for
    /// `(plan, seeds, cluster)` or execute (on a memoized stage graph),
    /// store, and return them. Execution runs *outside* any lock.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        cluster: &Cluster,
        config_epoch: u64,
        cluster_epoch: u64,
        job_seed: u64,
        run_seed: u64,
    ) -> ExecutionMetrics {
        let key = (plan.fingerprint(), job_seed, run_seed, cluster_epoch);
        if let Some(cached) = self.results.get(&key) {
            self.r_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.r_misses.fetch_add(1, Ordering::Relaxed);
        let graph = self.stage_graph(plan, config_epoch, &cluster.config);
        let metrics = execute_stages(&graph, cluster, job_seed, run_seed);
        if self.results.insert(key, metrics) {
            self.r_inserts.fetch_add(1, Ordering::Relaxed);
        }
        metrics
    }

    /// Snapshot of the monotonic counters. Evictions come from the
    /// per-shard counters inside each [`ShardedCache`].
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            results: CacheStats {
                hits: self.r_hits.load(Ordering::Relaxed),
                misses: self.r_misses.load(Ordering::Relaxed),
                inserts: self.r_inserts.load(Ordering::Relaxed),
                evictions: self.results.evictions(),
            },
            graphs: CacheStats {
                hits: self.g_hits.load(Ordering::Relaxed),
                misses: self.g_misses.load(Ordering::Relaxed),
                inserts: self.g_inserts.load(Ordering::Relaxed),
                evictions: self.graphs.evictions(),
            },
        }
    }

    /// Live cached results across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Live memoized stage graphs across all shards.
    #[must_use]
    pub fn graph_len(&self) -> usize {
        self.graphs.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty() && self.graphs.is_empty()
    }

    /// Drop every entry (counters keep running).
    pub fn clear(&self) {
        self.results.clear();
        self.graphs.clear();
    }
}

/// A [`Cluster`] plus an optional shared [`ExecutionCache`], behind the same
/// [`Executor`] interface as the bare cluster. This is what the simulation
/// holds — one per environment (production, pre-production), all pointing at
/// one cache; the cluster epochs baked in at construction keep their entries
/// apart while letting them share stage graphs.
#[derive(Debug, Clone)]
pub struct CachingExecutor {
    cluster: Cluster,
    /// Hardware-only epoch (stage-graph sharing).
    config_epoch: u64,
    /// Full-environment epoch (result isolation).
    cluster_epoch: u64,
    cache: Option<Arc<ExecutionCache>>,
}

impl CachingExecutor {
    /// Wrap `cluster` over an optional shared cache (`None` = pass-through).
    #[must_use]
    pub fn new(cluster: Cluster, cache: Option<Arc<ExecutionCache>>) -> Self {
        Self {
            config_epoch: cluster.config_epoch(),
            cluster_epoch: cluster.epoch(),
            cluster,
            cache,
        }
    }

    /// An executor with its own private cache per `config` (`enabled:
    /// false` builds no cache at all). Convenience for standalone use;
    /// simulations share one cache via [`ExecutionCache::shared`] +
    /// [`CachingExecutor::new`] instead.
    #[must_use]
    pub fn with_config(cluster: Cluster, config: ExecCacheConfig) -> Self {
        Self::new(cluster, ExecutionCache::shared(config))
    }

    /// A pass-through wrapper (every execution goes straight to the
    /// simulator).
    #[must_use]
    pub fn uncached(cluster: Cluster) -> Self {
        Self::new(cluster, None)
    }

    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    #[must_use]
    pub fn cache(&self) -> Option<&Arc<ExecutionCache>> {
        self.cache.as_ref()
    }

    /// Counter snapshot of the underlying (possibly shared) cache; all-zero
    /// when caching is disabled.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.cache
            .as_ref()
            .map(|cache| cache.stats())
            .unwrap_or_default()
    }
}

impl Executor for CachingExecutor {
    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn execute(&self, plan: &PhysicalPlan, job_seed: u64, run_seed: u64) -> ExecutionMetrics {
        match &self.cache {
            Some(cache) => cache.execute(
                plan,
                &self.cluster,
                self.config_epoch,
                self.cluster_epoch,
                job_seed,
                run_seed,
            ),
            None => execute(plan, &self.cluster, job_seed, run_seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::stats::DualStats;
    use scope_lang::{bind_script, Catalog, TableInfo};

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        j     = SELECT * FROM sales AS s JOIN users AS u ON s.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
    "#;

    fn physical(rows: f64) -> PhysicalPlan {
        let mut catalog = Catalog::default();
        catalog.register(
            "store/sales",
            TableInfo {
                rows: DualStats::exact(rows),
            },
        );
        let plan = bind_script(SCRIPT, &catalog).unwrap();
        let opt = scope_opt::Optimizer::default();
        opt.compile(&plan, &opt.default_config()).unwrap().physical
    }

    #[test]
    fn cached_execution_replays_bit_identically() {
        let plan = physical(1e7);
        let cluster = Cluster::default();
        let cached = CachingExecutor::with_config(cluster.clone(), ExecCacheConfig::default());
        let direct = execute(&plan, &cluster, 3, 9);
        let first = cached.execute(&plan, 3, 9);
        let second = cached.execute(&plan, 3, 9);
        assert_eq!(first, direct, "the cache is transparent");
        assert_eq!(second, direct, "the replay is bit-identical");
        let stats = cached.stats();
        assert_eq!((stats.results.hits, stats.results.misses), (1, 1));
        assert_eq!(
            (stats.graphs.hits, stats.graphs.misses),
            (0, 1),
            "one graph built, consulted only on the result miss"
        );
    }

    #[test]
    fn graph_memo_hits_across_run_seeds() {
        let plan = physical(1e7);
        let cached = CachingExecutor::with_config(Cluster::default(), ExecCacheConfig::default());
        for run in 0..5 {
            let a = cached.execute(&plan, 7, run);
            let b = execute(&plan, cached.cluster(), 7, run);
            assert_eq!(a, b, "fresh run seeds stay transparent");
        }
        let stats = cached.stats();
        assert_eq!(stats.results.misses, 5, "every run seed is a new result");
        assert_eq!(
            (stats.graphs.hits, stats.graphs.misses),
            (4, 1),
            "the stage graph is built once and replayed four times"
        );
        let cache = cached.cache().unwrap();
        assert_eq!(cache.graph_len(), 1);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn environments_share_graphs_but_not_results() {
        let plan = physical(1e7);
        let cache = ExecutionCache::shared(ExecCacheConfig::default()).unwrap();
        let prod = CachingExecutor::new(Cluster::default(), Some(Arc::clone(&cache)));
        let preprod = CachingExecutor::new(Cluster::preproduction(), Some(Arc::clone(&cache)));
        let a = prod.execute(&plan, 1, 1);
        let b = preprod.execute(&plan, 1, 1);
        assert_ne!(
            a.latency_sec, b.latency_sec,
            "pre-production is noisier; same key on a shared cache would \
             wrongly replay the production result"
        );
        assert_eq!(b, execute(&plan, preprod.cluster(), 1, 1));
        let stats = cache.stats();
        assert_eq!(stats.results.hits, 0, "distinct epochs, distinct entries");
        assert_eq!(
            (stats.graphs.hits, stats.graphs.misses),
            (1, 1),
            "identical hardware shares the memoized stage graph"
        );
    }

    #[test]
    fn uncached_executor_is_pure_pass_through() {
        let plan = physical(1e6);
        let uncached = CachingExecutor::uncached(Cluster::default());
        let m = uncached.execute(&plan, 2, 2);
        assert_eq!(m, execute(&plan, uncached.cluster(), 2, 2));
        assert_eq!(uncached.stats(), ExecStats::default());
        assert!(uncached.cache().is_none());
        assert!(ExecutionCache::shared(ExecCacheConfig::disabled()).is_none());
    }

    #[test]
    fn capacity_evicts_results_fifo() {
        let plan = physical(1e6);
        let cache = ExecutionCache::new(ExecCacheConfig {
            enabled: true,
            capacity: 2,
            graph_capacity: 0,
            shards: 1,
        });
        let cluster = Cluster::default();
        let (ce, ee) = (cluster.config_epoch(), cluster.epoch());
        for run in 0..3 {
            let _ = cache.execute(&plan, &cluster, ce, ee, 1, run);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().results.evictions, 1);
        // Oldest (run 0) was evicted: looking it up again misses...
        let before = cache.stats();
        let _ = cache.execute(&plan, &cluster, ce, ee, 1, 0);
        assert_eq!(cache.stats().since(&before).results.misses, 1);
        // ...while the newest still hits.
        let before = cache.stats();
        let _ = cache.execute(&plan, &cluster, ce, ee, 1, 2);
        assert_eq!(cache.stats().since(&before).results.hits, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn distinct_plans_and_seeds_get_distinct_entries() {
        let small = physical(1e6);
        let big = physical(1e9);
        assert_ne!(small.fingerprint(), big.fingerprint());
        let cached = CachingExecutor::with_config(Cluster::default(), ExecCacheConfig::default());
        let _ = cached.execute(&small, 1, 1);
        let _ = cached.execute(&big, 1, 1);
        let _ = cached.execute(&small, 2, 1);
        let _ = cached.execute(&small, 1, 2);
        let cache = cached.cache().unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.graph_len(), 2);
        assert_eq!(cached.stats().results.hits, 0);
    }

    #[test]
    fn config_defaults_and_serde() {
        let c = ExecCacheConfig::default();
        assert!(c.enabled);
        assert!(c.capacity > 0 && c.graph_capacity > 0 && c.shards > 0);
        assert!(!ExecCacheConfig::disabled().enabled);
        let json = serde_json::to_string(&c).unwrap();
        let back: ExecCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        // The shared CLI/env switch vocabulary.
        for on in ["on", "1", "true"] {
            assert_eq!(ExecCacheConfig::parse_switch(on), Ok(c));
        }
        for off in ["off", "0", "false"] {
            assert_eq!(
                ExecCacheConfig::parse_switch(off),
                Ok(ExecCacheConfig::disabled())
            );
        }
        assert!(ExecCacheConfig::parse_switch("bogus").is_err());
    }

    #[test]
    fn exec_stats_roll_up() {
        let a = ExecStats {
            results: CacheStats {
                hits: 2,
                misses: 2,
                inserts: 2,
                evictions: 0,
            },
            graphs: CacheStats {
                hits: 1,
                misses: 1,
                inserts: 1,
                evictions: 0,
            },
        };
        assert_eq!(a.lookups(), 4);
        assert_eq!(a.hits(), 2);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert!((a.partial_hit_rate() - 0.75).abs() < 1e-12);
        let sum = a + a;
        assert_eq!(sum.results.hits, 4);
        assert_eq!(sum.since(&a), a);
        let total: ExecStats = [a, a].into_iter().sum();
        assert_eq!(total, sum);
    }
}

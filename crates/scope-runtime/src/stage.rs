//! Stage-graph extraction: cut the physical plan at exchanges into pipelined
//! stages, derive each stage's parallelism and ground-truth work profile.
//!
//! The **actual** side of the dual statistics and the **actual** tuning
//! knobs are used throughout — this module is the ground truth the optimizer
//! never sees.

use crate::cluster::ClusterConfig;
use rustc_hash::FxHashMap;
use scope_ir::physical::{Partitioning, PhysicalOp, PhysicalPlan};
use scope_ir::NodeId;

/// Ground-truth work of one stage (totals across all its vertices).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageWork {
    /// CPU work units.
    pub cpu: f64,
    /// Bytes read (base inputs + exchange reads).
    pub read: f64,
    /// Bytes written (outputs + exchange writes charged to the producer).
    pub written: f64,
    /// Peak working-set bytes (hash builds, aggregation tables).
    pub memory: f64,
}

/// One stage: a pipeline of operators executed by `parallelism` vertices.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Plan nodes fused into this stage.
    pub members: Vec<NodeId>,
    /// Producer stages this stage consumes (via exchanges).
    pub inputs: Vec<usize>,
    pub parallelism: u32,
    pub work: StageWork,
}

/// The stage DAG of a physical plan.
#[derive(Debug, Clone)]
pub struct StageGraph {
    pub stages: Vec<Stage>,
}

impl StageGraph {
    /// Total vertices of the job.
    #[must_use]
    pub fn vertices(&self) -> u64 {
        self.stages.iter().map(|s| u64::from(s.parallelism)).sum()
    }

    /// Peak concurrent containers ≈ the widest stage.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| u64::from(s.parallelism))
            .max()
            .unwrap_or(0)
    }

    /// Build the stage graph of a plan. Stages are maximal regions connected
    /// by non-exchange edges; each Exchange node joins its *consumer's*
    /// stage (it models the read side of the shuffle), while its child stays
    /// in the producer stage.
    #[must_use]
    pub fn build(plan: &PhysicalPlan, cluster: &ClusterConfig) -> StageGraph {
        let order = plan.topo_order();
        // Union-find over arena slots.
        let mut parent: Vec<usize> = (0..plan.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        };
        for &id in &order {
            let node = plan.node(id);
            let id_is_exchange = node.op.is_stage_boundary();
            for &c in &node.children {
                let child_is_exchange = plan.node(c).op.is_stage_boundary();
                if child_is_exchange {
                    // consumer(id) <- exchange(c): same stage.
                    union(&mut parent, id.index(), c.index());
                } else if !id_is_exchange {
                    // plain edge: fuse.
                    union(&mut parent, id.index(), c.index());
                }
                // exchange(id) <- producer(c): cut (producer stage ends).
            }
        }

        // Collect stages in deterministic order of their root slot.
        let mut stage_of: FxHashMap<usize, usize> = FxHashMap::default();
        let mut stages: Vec<Stage> = Vec::new();
        for &id in &order {
            let root = find(&mut parent, id.index());
            let sid = *stage_of.entry(root).or_insert_with(|| {
                stages.push(Stage {
                    members: Vec::new(),
                    inputs: Vec::new(),
                    parallelism: 1,
                    work: StageWork::default(),
                });
                stages.len() - 1
            });
            stages[sid].members.push(id);
        }

        // Stage DAG edges: producer-of-exchange -> stage-of-exchange.
        let mut node_stage: FxHashMap<usize, usize> = FxHashMap::default();
        for (sid, s) in stages.iter().enumerate() {
            for m in &s.members {
                node_stage.insert(m.index(), sid);
            }
        }
        for &id in &order {
            if plan.node(id).op.is_stage_boundary() {
                let consumer = node_stage[&id.index()];
                let producer = node_stage[&plan.node(id).children[0].index()];
                if producer != consumer && !stages[consumer].inputs.contains(&producer) {
                    stages[consumer].inputs.push(producer);
                }
            }
        }

        // Parallelism and work.
        #[allow(clippy::needless_range_loop)] // sid also indexes node_stage lookups
        for sid in 0..stages.len() {
            let mut parallelism: u32 = 1;
            let mut work = StageWork::default();
            for &m in &stages[sid].members.clone() {
                let node = plan.node(m);
                match &node.op {
                    PhysicalOp::Exchange { scheme } => {
                        // Consumer-side parallelism from the exchange.
                        match scheme {
                            Partitioning::Hash { partitions, .. }
                            | Partitioning::Range { partitions, .. } => {
                                parallelism = parallelism.max(*partitions);
                            }
                            Partitioning::Broadcast | Partitioning::Gather => {}
                        }
                        // Bytes moved (already includes the exchange node's
                        // actual io tuning, e.g. realized compression).
                        let bytes = node.stats.actual_bytes() * node.tuning.io_mult;
                        let replication = match scheme {
                            Partitioning::Broadcast => 8.0,
                            _ => 1.0,
                        };
                        work.read += bytes * replication;
                        // The write side is charged to the producer stage in
                        // a separate pass below.
                    }
                    PhysicalOp::TableScan { .. } => {
                        let bytes = node.stats.actual_bytes() * node.tuning.io_mult;
                        work.read += bytes;
                        let scan_par = (bytes / cluster.bytes_per_scan_task).ceil().max(1.0) as u32;
                        parallelism = parallelism
                            .max(scan_par.min(cluster.max_parallelism))
                            .max(
                                (scan_par as f64 * node.tuning.parallelism_mult)
                                    .round()
                                    .max(1.0) as u32,
                            )
                            .min(cluster.max_parallelism);
                    }
                    PhysicalOp::OutputExec { .. } => {
                        work.written += node.stats.actual_bytes() * node.tuning.io_mult;
                        work.cpu += node.stats.rows.actual * 0.1 * node.tuning.cpu_mult;
                    }
                    op => {
                        let (cpu, mem) = op_true_work(op, plan, m);
                        work.cpu += cpu * node.tuning.cpu_mult;
                        work.memory = work.memory.max(mem);
                    }
                }
            }
            stages[sid].parallelism = parallelism.min(cluster.max_parallelism);
            stages[sid].work.cpu += work.cpu;
            stages[sid].work.read += work.read;
            stages[sid].work.written += work.written;
            stages[sid].work.memory = stages[sid].work.memory.max(work.memory);
        }

        // Exchange write side charged to producer stages.
        for &id in &order {
            let node = plan.node(id);
            if let PhysicalOp::Exchange { .. } = &node.op {
                let bytes = node.stats.actual_bytes() * node.tuning.io_mult;
                let producer = node_stage[&node.children[0].index()];
                stages[producer].work.written += bytes;
            }
        }

        StageGraph { stages }
    }
}

/// Ground-truth CPU work units and working-set bytes of one operator
/// (mirrors the cost model formulas, but on the actual statistics).
fn op_true_work(op: &PhysicalOp, plan: &PhysicalPlan, id: NodeId) -> (f64, f64) {
    let node = plan.node(id);
    let out = &node.stats;
    let child = |i: usize| -> f64 {
        node.children
            .get(i)
            .map_or(0.0, |c| plan.node(*c).stats.rows.actual)
    };
    let child_bytes = |i: usize| -> f64 {
        node.children
            .get(i)
            .map_or(0.0, |c| plan.node(*c).stats.actual_bytes())
    };
    match op {
        PhysicalOp::FilterExec { predicate } => (child(0) * predicate.cpu_weight().max(0.1), 0.0),
        PhysicalOp::ProjectExec { exprs } => {
            let w: f64 = exprs
                .iter()
                .map(|(e, _)| e.cpu_weight())
                .sum::<f64>()
                .max(0.1);
            (child(0) * w * 0.5, 0.0)
        }
        PhysicalOp::HashJoin { .. } => (
            child(1) * 1.5 + child(0) * 1.0 + out.rows.actual * 0.3,
            child_bytes(1),
        ),
        PhysicalOp::MergeJoin { .. } => ((child(0) + child(1)) * 0.7 + out.rows.actual * 0.3, 0.0),
        PhysicalOp::BroadcastJoin { .. } => (
            child(1) * 1.5 + child(0) * 1.0 + out.rows.actual * 0.3,
            child_bytes(1),
        ),
        PhysicalOp::HashAggregate { .. } => {
            (child(0) * 1.2 + out.rows.actual * 0.5, out.actual_bytes())
        }
        PhysicalOp::StreamAggregate { .. } => (child(0) * 0.6 + out.rows.actual * 0.3, 0.0),
        PhysicalOp::SortExec { .. } => {
            let n = child(0).max(2.0);
            (n * n.log2() * 0.25, child_bytes(0) * 0.2)
        }
        PhysicalOp::TopNExec { .. } => (child(0) * 0.4, 0.0),
        PhysicalOp::WindowExec { .. } => (child(0) * 1.5, child_bytes(0) * 0.1),
        PhysicalOp::ProcessExec { cpu_factor, .. } => (child(0) * 2.0 * cpu_factor, 0.0),
        PhysicalOp::UnionAllExec => (0.0, 0.0),
        // Scan/Output/Exchange handled by the caller.
        _ => (0.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_lang::{bind_script, Catalog};
    use scope_opt::Optimizer;

    fn compiled_plan(src: &str) -> PhysicalPlan {
        let plan = bind_script(src, &Catalog::default()).unwrap();
        let opt = Optimizer::default();
        opt.compile(&plan, &opt.default_config()).unwrap().physical
    }

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        j     = SELECT * FROM sales AS s JOIN users AS u ON s.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
    "#;

    #[test]
    fn stage_graph_has_multiple_stages_for_distributed_plan() {
        let plan = compiled_plan(SCRIPT);
        let g = StageGraph::build(&plan, &ClusterConfig::default());
        assert!(
            g.stages.len() >= 2,
            "join+agg plan must cross stages: {}",
            g.stages.len()
        );
        // Stage DAG edges exist.
        assert!(g.stages.iter().any(|s| !s.inputs.is_empty()));
    }

    #[test]
    fn every_node_is_in_exactly_one_stage() {
        let plan = compiled_plan(SCRIPT);
        let g = StageGraph::build(&plan, &ClusterConfig::default());
        let mut seen = std::collections::HashSet::new();
        for s in &g.stages {
            for m in &s.members {
                assert!(seen.insert(*m), "node {m} in two stages");
            }
        }
        assert_eq!(seen.len(), plan.topo_order().len());
    }

    #[test]
    fn vertices_and_tokens_are_positive_and_consistent() {
        let plan = compiled_plan(SCRIPT);
        let g = StageGraph::build(&plan, &ClusterConfig::default());
        assert!(g.vertices() >= g.stages.len() as u64);
        assert!(g.tokens() <= g.vertices());
        assert!(g.tokens() >= 1);
    }

    #[test]
    fn work_profile_accounts_reads_and_writes() {
        let plan = compiled_plan(SCRIPT);
        let g = StageGraph::build(&plan, &ClusterConfig::default());
        let total_read: f64 = g.stages.iter().map(|s| s.work.read).sum();
        let total_written: f64 = g.stages.iter().map(|s| s.work.written).sum();
        assert!(total_read > 0.0, "scans read data");
        assert!(total_written > 0.0, "outputs and shuffles write data");
        let total_cpu: f64 = g.stages.iter().map(|s| s.work.cpu).sum();
        assert!(total_cpu > 0.0);
    }

    #[test]
    fn stage_graph_is_deterministic() {
        let plan = compiled_plan(SCRIPT);
        let a = StageGraph::build(&plan, &ClusterConfig::default());
        let b = StageGraph::build(&plan, &ClusterConfig::default());
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.stages.len(), b.stages.len());
        for (x, y) in a.stages.iter().zip(b.stages.iter()) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.work, y.work);
        }
    }

    #[test]
    fn bigger_inputs_mean_more_scan_parallelism() {
        let mut catalog = Catalog::default();
        catalog.register(
            "store/sales",
            scope_lang::TableInfo {
                rows: scope_ir::stats::DualStats::exact(5e8),
            },
        );
        let src = r#"
            sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
            OUTPUT sales TO "out/all";
        "#;
        let small = {
            let plan = bind_script(src, &Catalog::default()).unwrap();
            let opt = Optimizer::default();
            let c = opt.compile(&plan, &opt.default_config()).unwrap();
            StageGraph::build(&c.physical, &ClusterConfig::default()).vertices()
        };
        let big = {
            let plan = bind_script(src, &catalog).unwrap();
            let opt = Optimizer::default();
            let c = opt.compile(&plan, &opt.default_config()).unwrap();
            StageGraph::build(&c.physical, &ClusterConfig::default()).vertices()
        };
        assert!(big > small, "big {big} vs small {small}");
    }
}

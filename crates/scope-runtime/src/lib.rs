//! Distributed execution simulator for the SCOPE-like engine.
//!
//! Executes [`scope_ir::PhysicalPlan`]s on a simulated cluster and returns
//! the runtime metrics QO-Advisor learns from: **latency**, **PNhours** (sum
//! of CPU and I/O time over all vertices, §2.1), **vertices**, **DataRead**,
//! **DataWritten**, and memory. Ground truth comes from the *actual* side of
//! the plan's dual statistics and the *actual* tuning knobs — the optimizer's
//! estimates are never consulted here.
//!
//! The cloud-variance model reproduces the paper's §5.1 findings by
//! construction rather than by curve fitting:
//!
//! * **latency** is a critical-path/max statistic: each stage waits for its
//!   slowest vertex (lognormal per-vertex noise plus occasional stragglers),
//!   so run-to-run variance is large and grows with parallelism;
//! * **PNhours** sums per-vertex CPU time (noise averages out across
//!   vertices) plus I/O time that is *deterministic given bytes moved* ("the
//!   variability of I/O time across A/A runs is bounded as data read and
//!   data written remain constant", §4.3), so it is far stabler.
//!
//! Execution is deterministic given `(plan, cluster, job_seed, run_seed)`,
//! which the [`Executor`] trait turns into an architecture: call sites are
//! generic over it, a bare [`Cluster`] (or [`ClusterExecutor`]) executes
//! directly, and [`CachingExecutor`] memoizes stage graphs and whole
//! execution results in a shared [`ExecutionCache`] — bit-identically, the
//! execution-side mirror of `scope_opt`'s compile-result cache.

pub mod cache;
pub mod cluster;
pub mod executor;
pub mod metrics;
pub mod stage;

pub use cache::{CachingExecutor, ExecCacheConfig, ExecStats, ExecutionCache};
pub use cluster::{Cluster, ClusterConfig, VarianceModel};
pub use executor::{execute, ClusterExecutor, Executor};
pub use metrics::{rel_delta, ExecutionMetrics};
pub use stage::{StageGraph, StageWork};

//! Cluster hardware model and the cloud variance model.

use scope_ir::ids::{hash_value, mix64, CLUSTER_CONFIG_EPOCH_SALT, CLUSTER_VARIANCE_EPOCH_SALT};
use serde::{Deserialize, Serialize};

/// Hardware constants of the simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Per-vertex IO bandwidth, bytes/sec (reads and exchange traffic).
    pub io_bandwidth: f64,
    /// Per-vertex write bandwidth, bytes/sec.
    pub write_bandwidth: f64,
    /// Per-vertex CPU throughput, work-units/sec.
    pub cpu_speed: f64,
    /// Input bytes one scan vertex is responsible for (extent sizing).
    pub bytes_per_scan_task: f64,
    /// Hard cap on stage parallelism.
    pub max_parallelism: u32,
    /// Concurrent containers allotted to one job ("tokens", §2.1). Stages
    /// wider than this run in waves: `ceil(P / tokens)` rounds of vertices.
    /// This is why vertex reductions translate into latency reductions —
    /// fewer vertices means fewer scheduling waves for the same tokens.
    pub tokens_per_job: u32,
    /// Fixed scheduling/startup cost charged per vertex (PN seconds).
    pub vertex_overhead_sec: f64,
    /// Fixed per-stage startup latency (seconds).
    pub stage_startup_sec: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            io_bandwidth: 1.0e8,         // 100 MB/s
            write_bandwidth: 8.0e7,      // 80 MB/s
            cpu_speed: 2.5e7,            // 25M row-ops/s: PNhours is IO-heavy
            bytes_per_scan_task: 2.56e8, // 256 MB extents
            max_parallelism: 256,
            tokens_per_job: 24,
            vertex_overhead_sec: 1.0,
            stage_startup_sec: 4.0,
        }
    }
}

/// Cloud variance model (paper §5.1). All noise is multiplicative and drawn
/// per (job, run) from deterministic seeds, so experiments are reproducible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VarianceModel {
    /// Lognormal sigma of per-vertex *duration* noise (drives latency:
    /// stages wait for their slowest vertex).
    pub vertex_sigma: f64,
    /// Probability that a vertex straggles.
    pub straggler_prob: f64,
    /// Straggler slowdown range (uniform in [lo, hi]).
    pub straggler_slowdown: (f64, f64),
    /// Lognormal sigma of per-vertex *CPU time* noise (drives PNhours; it
    /// averages out across vertices).
    pub cpu_sigma: f64,
    /// Lognormal sigma of a whole-run environment multiplier applied to CPU
    /// time (cluster-wide interference; does not average out).
    pub run_cpu_sigma: f64,
    /// Lognormal sigma of a whole-run multiplier on I/O *time* (bandwidth
    /// interference). Bytes moved stay constant across A/A runs — only the
    /// time to move them varies, which is exactly the paper's "variability
    /// of I/O time across A/A runs is bounded" observation (§4.3).
    pub run_io_sigma: f64,
    /// Probability that a stage suffers a vertex retry wave, re-charging a
    /// fraction of its work to PNhours and its duration to latency.
    pub retry_prob: f64,
    /// Fraction of stage work re-executed on a retry wave.
    pub retry_fraction: f64,
}

impl Default for VarianceModel {
    fn default() -> Self {
        Self {
            vertex_sigma: 0.35,
            straggler_prob: 0.035,
            straggler_slowdown: (1.6, 3.2),
            cpu_sigma: 0.10,
            run_cpu_sigma: 0.025,
            run_io_sigma: 0.065,
            retry_prob: 0.05,
            retry_fraction: 0.35,
        }
    }
}

impl VarianceModel {
    /// A variance-free model (useful for deterministic tests).
    #[must_use]
    pub fn none() -> Self {
        Self {
            vertex_sigma: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: (1.0, 1.0),
            cpu_sigma: 0.0,
            run_cpu_sigma: 0.0,
            run_io_sigma: 0.0,
            retry_prob: 0.0,
            retry_fraction: 0.0,
        }
    }
}

/// A simulated cluster: hardware constants plus variance model.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    pub config: ClusterConfig,
    pub variance: VarianceModel,
}

impl Cluster {
    #[must_use]
    pub fn new(config: ClusterConfig, variance: VarianceModel) -> Self {
        Self { config, variance }
    }

    /// Cluster with no run-to-run noise.
    #[must_use]
    pub fn deterministic() -> Self {
        Self {
            config: ClusterConfig::default(),
            variance: VarianceModel::none(),
        }
    }

    /// Stable fingerprint of the *hardware* constants only. Stage graphs
    /// depend on the plan and [`ClusterConfig`] but not on the variance
    /// model, so this is the epoch under which memoized stage graphs can be
    /// shared — e.g. between the production and pre-production clusters,
    /// which differ only in noise.
    #[must_use]
    pub fn config_epoch(&self) -> u64 {
        hash_value(&self.config.to_value(), CLUSTER_CONFIG_EPOCH_SALT).max(1)
    }

    /// Stable fingerprint of the full execution environment (hardware *and*
    /// variance model). Execution metrics depend on both, so this is the
    /// epoch in the execution-result cache key: reconfiguring a cluster
    /// yields a fresh epoch and implicitly invalidates its cached results.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        mix64(
            self.config_epoch(),
            hash_value(&self.variance.to_value(), CLUSTER_VARIANCE_EPOCH_SALT),
        )
        .max(1)
    }

    /// The pre-production (flighting) environment: same hardware model but
    /// markedly noisier than production — smaller shared clusters, no
    /// workload isolation. Single flighting runs are therefore unreliable,
    /// which is the entire reason the validation model exists (§4.3).
    #[must_use]
    pub fn preproduction() -> Self {
        Self {
            config: ClusterConfig::default(),
            variance: VarianceModel {
                vertex_sigma: 0.40,
                straggler_prob: 0.05,
                straggler_slowdown: (1.6, 3.5),
                cpu_sigma: 0.12,
                run_cpu_sigma: 0.06,
                run_io_sigma: 0.11,
                retry_prob: 0.09,
                retry_fraction: 0.45,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ClusterConfig::default();
        assert!(c.io_bandwidth > 0.0 && c.cpu_speed > 0.0);
        assert!(c.max_parallelism >= 1);
    }

    #[test]
    fn epochs_distinguish_environments_but_share_hardware() {
        let prod = Cluster::default();
        let preprod = Cluster::preproduction();
        let quiet = Cluster::deterministic();
        // Same hardware model => stage graphs are shareable.
        assert_eq!(prod.config_epoch(), preprod.config_epoch());
        assert_eq!(prod.config_epoch(), quiet.config_epoch());
        // Different noise => execution results are not.
        assert_ne!(prod.epoch(), preprod.epoch());
        assert_ne!(prod.epoch(), quiet.epoch());
        // Epochs are stable across reconstructions.
        assert_eq!(prod.epoch(), Cluster::default().epoch());
        // A hardware change shifts both epochs.
        let mut fat = Cluster::default();
        fat.config.tokens_per_job *= 2;
        assert_ne!(fat.config_epoch(), prod.config_epoch());
        assert_ne!(fat.epoch(), prod.epoch());
    }

    #[test]
    fn none_variance_is_noise_free() {
        let v = VarianceModel::none();
        assert_eq!(v.vertex_sigma, 0.0);
        assert_eq!(v.straggler_prob, 0.0);
        assert_eq!(v.retry_prob, 0.0);
    }
}

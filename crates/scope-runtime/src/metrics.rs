//! Runtime metrics logged by the SCOPE-like runtime (paper §2.1): job
//! latency, vertices count, PNhours, bytes read/written, and memory.

use serde::{Deserialize, Serialize};

/// Metrics of one job execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// End-to-end job latency in seconds (critical path over stages).
    pub latency_sec: f64,
    /// Sum of CPU and I/O time over all vertices, in hours (§2.1).
    pub pn_hours: f64,
    /// Total number of vertices (tasks) executed.
    pub vertices: u64,
    /// Peak number of concurrently used containers.
    pub tokens: u64,
    /// Bytes read: base inputs plus exchange reads.
    pub data_read: f64,
    /// Bytes written: outputs plus exchange writes.
    pub data_written: f64,
    /// Peak per-vertex working set, bytes.
    pub max_memory: f64,
    /// Mean per-vertex working set, bytes.
    pub avg_memory: f64,
    /// CPU-seconds component of PNhours (diagnostic).
    pub cpu_sec: f64,
    /// IO-seconds component of PNhours (diagnostic).
    pub io_sec: f64,
}

impl ExecutionMetrics {
    /// The paper's delta convention: `new / old - 1` (negative = improved).
    #[must_use]
    pub fn pn_delta(&self, baseline: &ExecutionMetrics) -> f64 {
        rel_delta(self.pn_hours, baseline.pn_hours)
    }

    #[must_use]
    pub fn latency_delta(&self, baseline: &ExecutionMetrics) -> f64 {
        rel_delta(self.latency_sec, baseline.latency_sec)
    }

    #[must_use]
    pub fn vertices_delta(&self, baseline: &ExecutionMetrics) -> f64 {
        rel_delta(self.vertices as f64, baseline.vertices as f64)
    }

    #[must_use]
    pub fn data_read_delta(&self, baseline: &ExecutionMetrics) -> f64 {
        rel_delta(self.data_read, baseline.data_read)
    }

    #[must_use]
    pub fn data_written_delta(&self, baseline: &ExecutionMetrics) -> f64 {
        rel_delta(self.data_written, baseline.data_written)
    }
}

/// Relative delta `new/old - 1`, with a guard for degenerate baselines.
#[must_use]
pub fn rel_delta(new: f64, old: f64) -> f64 {
    if old.abs() < 1e-12 {
        return 0.0;
    }
    new / old - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_delta_sign_convention() {
        assert!(
            (rel_delta(75.0, 100.0) + 0.25).abs() < 1e-12,
            "-25% improvement"
        );
        assert!(
            (rel_delta(110.0, 100.0) - 0.10).abs() < 1e-12,
            "+10% regression"
        );
        assert_eq!(rel_delta(5.0, 0.0), 0.0, "degenerate baseline");
    }

    #[test]
    fn metric_deltas_delegate() {
        let base = ExecutionMetrics {
            pn_hours: 10.0,
            latency_sec: 100.0,
            vertices: 50,
            ..Default::default()
        };
        let new = ExecutionMetrics {
            pn_hours: 9.0,
            latency_sec: 120.0,
            vertices: 25,
            ..Default::default()
        };
        assert!((new.pn_delta(&base) + 0.1).abs() < 1e-12);
        assert!((new.latency_delta(&base) - 0.2).abs() < 1e-12);
        assert!((new.vertices_delta(&base) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let m = ExecutionMetrics {
            pn_hours: 1.5,
            latency_sec: 30.0,
            vertices: 8,
            ..Default::default()
        };
        let s = serde_json::to_string(&m).unwrap();
        let back: ExecutionMetrics = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}

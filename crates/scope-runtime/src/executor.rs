//! Job execution: schedule the stage graph on the cluster, inject cloud
//! variance, and report runtime metrics.
//!
//! Execution is a *pure function* of the plan bytes, the cluster model, and
//! the two seeds — the property the [`Executor`] trait and the
//! execution-result cache ([`crate::CachingExecutor`]) are built on. Callers
//! that execute plans should be generic over [`Executor`] so a shared
//! [`crate::ExecutionCache`] can sit behind any of them.

use crate::cluster::Cluster;
use crate::metrics::ExecutionMetrics;
use crate::stage::StageGraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{normal_from_uniforms, normal_uniform_pair, Distribution, LogNormal};
use scope_ir::ids::{exec_base_seed, exec_stage_seed};
use scope_ir::physical::PhysicalPlan;

/// Something that can execute physical plans. `job_seed` identifies the job
/// instance (its data layout); `run_seed` identifies the run — the executor
/// carries the cluster (hardware + variance model) it runs on.
///
/// The contract every implementation must honor: **execution is
/// deterministic given `(plan, job_seed, run_seed)`** — same inputs, same
/// metrics, bit for bit. [`Cluster`] and [`ClusterExecutor`] execute
/// directly; [`crate::CachingExecutor`] memoizes stage graphs and execution
/// results behind the same interface, which the contract makes invisible.
pub trait Executor {
    /// The cluster (hardware + variance model) this executor runs on.
    /// Callers that pair an executor with an environment descriptor (e.g.
    /// `flighting::FlightingService`) use this to check the two agree.
    fn cluster(&self) -> &Cluster;

    /// Execute a physical plan under `(job_seed, run_seed)`.
    fn execute(&self, plan: &PhysicalPlan, job_seed: u64, run_seed: u64) -> ExecutionMetrics;
}

/// A bare [`Cluster`] is the plainest executor: build the stage graph, run
/// it, no caching. This keeps ad-hoc call sites (tests, examples, one-shot
/// probes) free of wrapper noise.
impl Executor for Cluster {
    fn cluster(&self) -> &Cluster {
        self
    }

    fn execute(&self, plan: &PhysicalPlan, job_seed: u64, run_seed: u64) -> ExecutionMetrics {
        execute(plan, self, job_seed, run_seed)
    }
}

/// The plain owning executor: a [`Cluster`] behind the [`Executor`] trait,
/// with no caching — the uncached counterpart of
/// [`crate::CachingExecutor`], the way `scope_opt`'s bare `Optimizer` is the
/// uncached counterpart of its `CachingOptimizer`.
#[derive(Debug, Clone, Default)]
pub struct ClusterExecutor {
    cluster: Cluster,
}

impl ClusterExecutor {
    #[must_use]
    pub fn new(cluster: Cluster) -> Self {
        Self { cluster }
    }

    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Executor for ClusterExecutor {
    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn execute(&self, plan: &PhysicalPlan, job_seed: u64, run_seed: u64) -> ExecutionMetrics {
        execute(plan, &self.cluster, job_seed, run_seed)
    }
}

/// Execute a physical plan. `job_seed` identifies the job instance (its data
/// layout); `run_seed` identifies the run — two executions with the same
/// seeds are identical, two runs with different `run_seed` model an A/A pair.
#[must_use]
pub fn execute(
    plan: &PhysicalPlan,
    cluster: &Cluster,
    job_seed: u64,
    run_seed: u64,
) -> ExecutionMetrics {
    let graph = StageGraph::build(plan, &cluster.config);
    execute_stages(&graph, cluster, job_seed, run_seed)
}

/// Execute a pre-built stage graph (exposed for benchmarks).
#[must_use]
pub fn execute_stages(
    graph: &StageGraph,
    cluster: &Cluster,
    job_seed: u64,
    run_seed: u64,
) -> ExecutionMetrics {
    let cfg = &cluster.config;
    let var = &cluster.variance;
    let base_seed = exec_base_seed(job_seed, run_seed);
    let mut run_rng = StdRng::seed_from_u64(base_seed);
    let vertex_noise = LogNormal::new(0.0, var.vertex_sigma.max(1e-9)).expect("sigma >= 0");
    let cpu_noise = LogNormal::new(0.0, var.cpu_sigma.max(1e-9)).expect("sigma >= 0");
    // Whole-run environment multiplier: cluster-wide interference that does
    // not average out across vertices.
    let run_cpu_mult = if var.run_cpu_sigma > 0.0 {
        LogNormal::new(0.0, var.run_cpu_sigma)
            .expect("sigma > 0")
            .sample(&mut run_rng)
    } else {
        1.0
    };
    // Run-level bandwidth interference: scales I/O *time*, never bytes.
    let run_io_mult = if var.run_io_sigma > 0.0 {
        LogNormal::new(0.0, var.run_io_sigma)
            .expect("sigma > 0")
            .sample(&mut run_rng)
    } else {
        1.0
    };

    let n = graph.stages.len();
    let mut finish = vec![0.0f64; n];
    let mut cpu_sec_total = 0.0;
    let mut io_sec_total = 0.0;
    let mut data_read = 0.0;
    let mut data_written = 0.0;
    let mut max_memory = 0.0f64;
    let mut memory_sum = 0.0;

    for (sid, stage) in graph.stages.iter().enumerate() {
        // Per-stage noise stream seeded by stage ordinal: two plans of the
        // same job executed under the same run seed share the noise of their
        // aligned stages (common random numbers), so A/B deltas reflect plan
        // differences rather than independent tail events — while the
        // marginal distribution of any single run is unchanged.
        let mut rng = StdRng::seed_from_u64(exec_stage_seed(base_seed, sid as u64));
        let p = f64::from(stage.parallelism.max(1));
        // Deterministic base resource times.
        let read_sec = stage.work.read / cfg.io_bandwidth;
        let write_sec = stage.work.written / cfg.write_bandwidth;
        let base_cpu_sec = stage.work.cpu / cfg.cpu_speed;

        // PNhours CPU component: per-vertex noise averages out; sample the
        // mean of `parallelism` lognormals cheaply via sampling each vertex
        // when small, or the analytic mean when wide. The per-vertex case
        // drains the uniform stream into one slice first, then transforms
        // in a tight RNG-free loop — bit-identical to sampling draw by draw
        // (`tests/legacy_values.rs` pins this against pre-change metrics).
        let vertices = stage.parallelism.max(1) as usize;
        let mean_cpu_mult = if var.cpu_sigma == 0.0 {
            1.0
        } else if vertices <= 64 {
            let mut pairs = [(0.0f64, 0.0f64); 64];
            for pair in pairs.iter_mut().take(vertices) {
                *pair = normal_uniform_pair(&mut rng);
            }
            pairs[..vertices]
                .iter()
                .map(|&(u1, u2)| cpu_noise.from_normal(normal_from_uniforms(u1, u2)))
                .sum::<f64>()
                / vertices as f64
        } else {
            // Law of large numbers: mean of many lognormals concentrates at
            // exp(sigma^2/2); add the residual fluctuation ~ sigma/sqrt(n).
            let mu = (var.cpu_sigma * var.cpu_sigma / 2.0).exp();
            mu * (1.0 + rng.random_range(-1.0..1.0) * var.cpu_sigma / (vertices as f64).sqrt())
        };
        let mut stage_cpu_sec = base_cpu_sec * mean_cpu_mult * run_cpu_mult;
        let mut stage_io_sec = (read_sec + write_sec) * run_io_mult;

        // Per-vertex duration: the slowest vertex gates each wave, and the
        // job's token allowance forces stages wider than it to run in waves
        // (fewer vertices => fewer waves => lower latency, §2.1/§5.5).
        let per_vertex = (stage_cpu_sec + stage_io_sec) / p;
        let waves = (p / f64::from(cfg.tokens_per_job.max(1))).ceil().max(1.0);
        let worst = if var.vertex_sigma > 0.0 || var.straggler_prob > 0.0 {
            worst_vertex_multiplier(&mut rng, vertices.min(512), &vertex_noise, var)
        } else {
            1.0
        };
        let mut duration = per_vertex * waves * worst + cfg.stage_startup_sec;

        // Retry waves re-charge a fraction of the stage.
        if var.retry_prob > 0.0 && rng.random::<f64>() < var.retry_prob {
            stage_cpu_sec *= 1.0 + var.retry_fraction;
            stage_io_sec *= 1.0 + var.retry_fraction;
            duration *= 1.0 + var.retry_fraction;
        }

        let start = stage.inputs.iter().map(|&i| finish[i]).fold(0.0, f64::max);
        finish[sid] = start + duration;

        cpu_sec_total += stage_cpu_sec + f64::from(stage.parallelism) * cfg.vertex_overhead_sec;
        io_sec_total += stage_io_sec;
        data_read += stage.work.read;
        data_written += stage.work.written;
        let per_vertex_mem = stage.work.memory / p;
        max_memory = max_memory.max(per_vertex_mem);
        memory_sum += per_vertex_mem;
    }

    let latency_sec = finish.iter().copied().fold(0.0, f64::max);
    ExecutionMetrics {
        latency_sec,
        pn_hours: (cpu_sec_total + io_sec_total) / 3600.0,
        vertices: graph.vertices(),
        tokens: graph.tokens(),
        data_read,
        data_written,
        max_memory,
        avg_memory: if n > 0 { memory_sum / n as f64 } else { 0.0 },
        cpu_sec: cpu_sec_total,
        io_sec: io_sec_total,
    }
}

/// The slowest-vertex multiplier of one stage: the max over `n` per-vertex
/// lognormal draws, each escalated by a straggler slowdown when its coin
/// hits — restructured from `n` interleaved RNG round-trips into two phases:
///
/// 1. **Drain** the uniform stream in the exact sequential draw order —
///    Box-Muller pair, straggler coin, and (only when the coin hits) the
///    slowdown draw. The coin compares a raw uniform, so the stream stays
///    fully predictable without computing a single transcendental.
/// 2. **Running max with a conservative skip filter.** A non-straggler
///    vertex's multiplier is `exp(sigma·z)` with `z ≤ √(−2 ln u1)`
///    (Box-Muller's cosine is at most 1), so once `worst` has grown, the
///    whole ln/sqrt/cos/exp chain is provably irrelevant for most vertices:
///    skip when `u1 ≥ exp(−zmax²/2)` where
///    `zmax = ln(worst·(1−1e-12))/sigma`. The 1e-12 pad lives in multiplier
///    space, so it dominates every rounding error in the bound (a handful
///    of ulps) at any sigma — float error can only make the filter *less*
///    eager, never skip a vertex that would have raised the max.
///
/// Max is order-insensitive and skipped draws are provably below it, so the
/// result is **bit-identical** to sampling draw by draw (asserted against a
/// sequential reference below and pinned to pre-change metrics in
/// `tests/legacy_values.rs`); under a heavy-tailed lognormal `worst` grows
/// within a few draws and the filter then rejects the bulk of a wide
/// stage's vertices.
fn worst_vertex_multiplier(
    rng: &mut StdRng,
    n: usize,
    vertex_noise: &LogNormal,
    var: &crate::cluster::VarianceModel,
) -> f64 {
    debug_assert!(n <= 512);
    let mut u1s = [0.0f64; 512];
    let mut u2s = [0.0f64; 512];
    let mut mults = [1.0f64; 512];
    for i in 0..n {
        (u1s[i], u2s[i]) = normal_uniform_pair(rng);
        if rng.random::<f64>() < var.straggler_prob {
            mults[i] = rng.random_range(var.straggler_slowdown.0..=var.straggler_slowdown.1);
        }
    }
    let sigma = var.vertex_sigma.max(1e-9);
    let skip_above = |worst: f64| {
        let padded = worst * (1.0 - 1e-12);
        if padded <= 1.0 {
            // r ≥ 0 makes the bound ≥ 1: nothing is skippable yet.
            // (2.0 exceeds every uniform, which live in [0, 1).)
            return 2.0;
        }
        let zmax = padded.ln() / sigma;
        (-zmax * zmax / 2.0).exp()
    };
    let mut worst = 1.0f64;
    let mut threshold = skip_above(worst);
    for i in 0..n {
        if mults[i] == 1.0 && u1s[i] >= threshold {
            continue;
        }
        let m = vertex_noise.from_normal(normal_from_uniforms(u1s[i], u2s[i])) * mults[i];
        if m > worst {
            worst = m;
            threshold = skip_above(worst);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, VarianceModel};
    use scope_ir::stats::DualStats;
    use scope_lang::{bind_script, Catalog, TableInfo};

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        j     = SELECT * FROM sales AS s JOIN users AS u ON s.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
    "#;

    fn physical(rows: f64) -> PhysicalPlan {
        let mut catalog = Catalog::default();
        catalog.register(
            "store/sales",
            TableInfo {
                rows: DualStats::exact(rows),
            },
        );
        let plan = bind_script(SCRIPT, &catalog).unwrap();
        let opt = scope_opt::Optimizer::default();
        opt.compile(&plan, &opt.default_config()).unwrap().physical
    }

    #[test]
    fn execution_is_deterministic_given_seeds() {
        let plan = physical(1e7);
        let cluster = Cluster::default();
        let a = execute(&plan, &cluster, 1, 1);
        let b = execute(&plan, &cluster, 1, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_runs_differ_under_variance() {
        let plan = physical(1e7);
        let cluster = Cluster::default();
        let a = execute(&plan, &cluster, 1, 1);
        let b = execute(&plan, &cluster, 1, 2);
        assert_ne!(a.latency_sec, b.latency_sec);
        // Data read/written are run-invariant (paper §4.3).
        assert_eq!(a.data_read, b.data_read);
        assert_eq!(a.data_written, b.data_written);
        assert_eq!(a.vertices, b.vertices);
    }

    #[test]
    fn latency_varies_more_than_pnhours_across_aa_runs() {
        let plan = physical(3e7);
        let cluster = Cluster::default();
        let runs: Vec<ExecutionMetrics> = (0..30).map(|r| execute(&plan, &cluster, 7, r)).collect();
        let cv = |xs: Vec<f64>| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        let cv_latency = cv(runs.iter().map(|m| m.latency_sec).collect());
        let cv_pn = cv(runs.iter().map(|m| m.pn_hours).collect());
        assert!(
            cv_latency > cv_pn * 1.5,
            "latency CV {cv_latency:.3} must exceed PNhours CV {cv_pn:.3}"
        );
    }

    #[test]
    fn deterministic_cluster_has_zero_variance() {
        let plan = physical(1e7);
        let cluster = Cluster::deterministic();
        let a = execute(&plan, &cluster, 1, 1);
        let b = execute(&plan, &cluster, 1, 99);
        assert!((a.latency_sec - b.latency_sec).abs() < 1e-9);
        assert!((a.pn_hours - b.pn_hours).abs() < 1e-12);
    }

    #[test]
    fn larger_inputs_cost_more() {
        let cluster = Cluster::deterministic();
        let small = execute(&physical(1e6), &cluster, 1, 1);
        let big = execute(&physical(1e9), &cluster, 1, 1);
        assert!(big.pn_hours > small.pn_hours * 10.0);
        assert!(big.latency_sec > small.latency_sec);
        assert!(big.data_read > small.data_read);
        assert!(big.vertices >= small.vertices);
    }

    #[test]
    fn pnhours_decomposes_into_cpu_and_io() {
        let plan = physical(1e7);
        let m = execute(&plan, &Cluster::deterministic(), 1, 1);
        assert!((m.pn_hours * 3600.0 - (m.cpu_sec + m.io_sec)).abs() < 1e-6);
        assert!(m.io_sec > 0.0 && m.cpu_sec > 0.0);
    }

    /// The draw-by-draw loop `worst_vertex_multiplier` replaced, verbatim:
    /// sample, coin, conditional slowdown, running max — one RNG round-trip
    /// per vertex.
    fn worst_vertex_reference(
        rng: &mut StdRng,
        n: usize,
        vertex_noise: &LogNormal,
        var: &VarianceModel,
    ) -> f64 {
        let mut worst = 1.0f64;
        for _ in 0..n {
            let mut m = vertex_noise.sample(rng);
            if rng.random::<f64>() < var.straggler_prob {
                m *= rng.random_range(var.straggler_slowdown.0..=var.straggler_slowdown.1);
            }
            worst = worst.max(m);
        }
        worst
    }

    #[test]
    fn vectorized_worst_vertex_matches_sequential_reference_bit_for_bit() {
        // (vertex_sigma, straggler_prob) combos including the degenerate
        // sigma == 0 regime where only stragglers move the max (the skip
        // filter's padded bound must stay conservative at sigma -> 1e-9).
        let combos = [
            (0.35, 0.02),
            (0.35, 0.0),
            (0.0, 0.05),
            (1.5, 0.3),
            (0.05, 1.0),
        ];
        for &(sigma, prob) in &combos {
            let var = VarianceModel {
                vertex_sigma: sigma,
                straggler_prob: prob,
                ..VarianceModel::default()
            };
            let noise = LogNormal::new(0.0, sigma.max(1e-9)).unwrap();
            for seed in 0..200 {
                for n in [1usize, 7, 64, 512] {
                    let mut vec_rng = StdRng::seed_from_u64(seed);
                    let mut ref_rng = StdRng::seed_from_u64(seed);
                    let got = worst_vertex_multiplier(&mut vec_rng, n, &noise, &var);
                    let want = worst_vertex_reference(&mut ref_rng, n, &noise, &var);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "sigma={sigma} prob={prob} seed={seed} n={n}: {got} != {want}"
                    );
                    // Both paths must also leave the stream in the same
                    // place (the retry draw follows from the same rng).
                    assert_eq!(vec_rng.random::<u64>(), ref_rng.random::<u64>());
                }
            }
        }
    }

    #[test]
    fn straggler_free_model_still_noisy_but_milder() {
        let plan = physical(3e7);
        let mild = Cluster::new(
            Default::default(),
            VarianceModel {
                straggler_prob: 0.0,
                ..VarianceModel::default()
            },
        );
        let full = Cluster::default();
        let spread = |cluster: &Cluster| {
            let xs: Vec<f64> = (0..40)
                .map(|r| execute(&plan, cluster, 7, r).latency_sec)
                .collect();
            let max = xs.iter().cloned().fold(f64::MIN, f64::max);
            let min = xs.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(&full) >= spread(&mild) * 0.9);
    }
}

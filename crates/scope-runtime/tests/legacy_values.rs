//! Legacy-value pins for the execution sampler.
//!
//! The vectorized sampling path in `executor::execute_stages` must preserve
//! the *exact* values the original per-vertex sampling loop produced — not
//! just the distribution. The strings below were captured from the
//! pre-vectorization implementation (`{:?}` on `f64` prints the shortest
//! round-tripping decimal, so string equality is bit equality), across the
//! three cluster models and several `(job_seed, run_seed)` pairs: any change
//! to draw order, transform arithmetic, or the worst-vertex max-reduction
//! shows up as a byte-level diff here.

use scope_ir::stats::DualStats;
use scope_lang::{bind_script, Catalog, TableInfo};
use scope_runtime::{execute, Cluster};

const SCRIPT: &str = r#"
    sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
    users = EXTRACT user:int, region:string FROM "store/users";
    j     = SELECT * FROM sales AS s JOIN users AS u ON s.user == u.user;
    agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
    OUTPUT agg TO "out/by_region";
"#;

fn physical(rows: f64) -> scope_ir::physical::PhysicalPlan {
    let mut catalog = Catalog::default();
    catalog.register(
        "store/sales",
        TableInfo {
            rows: DualStats::exact(rows),
        },
    );
    let plan = bind_script(SCRIPT, &catalog).unwrap();
    let opt = scope_opt::Optimizer::default();
    opt.compile(&plan, &opt.default_config()).unwrap().physical
}

/// `(cluster, input rows, job_seed, run_seed) -> Debug rendering` captured
/// from the pre-vectorization sampler.
const PINNED: &[(&str, f64, u64, u64, &str)] = &[
    ("default", 1e6, 1, 1, "ExecutionMetrics { latency_sec: 440.6349538652393, pn_hours: 0.2601148225149905, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 355.1593916796884, io_sec: 581.2539693742774 }"),
    ("default", 1e6, 7, 3, "ExecutionMetrics { latency_sec: 421.82444837182896, pn_hours: 0.2539213303438619, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 354.66868417445204, io_sec: 559.4481050634507 }"),
    ("default", 1e6, 42, 43981, "ExecutionMetrics { latency_sec: 437.76872800911485, pn_hours: 0.26653678775435125, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 354.1065762660881, io_sec: 605.4258596495765 }"),
    ("default", 3e7, 1, 1, "ExecutionMetrics { latency_sec: 7253.777849933368, pn_hours: 5.78661631199134, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 3434.262496707339, io_sec: 17397.556226461485 }"),
    ("default", 3e7, 7, 3, "ExecutionMetrics { latency_sec: 8003.167188741909, pn_hours: 5.5716634873896655, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 3313.105291084834, io_sec: 16744.88326351796 }"),
    ("default", 3e7, 42, 43981, "ExecutionMetrics { latency_sec: 7425.096452290587, pn_hours: 5.900924465322252, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 3122.2811848549336, io_sec: 18121.046890305173 }"),
    ("default", 1e9, 1, 1, "ExecutionMetrics { latency_sec: 91642.30458989277, pn_hours: 189.31896648469038, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 101739.6401957863, io_sec: 579808.6391490991 }"),
    ("default", 1e9, 7, 3, "ExecutionMetrics { latency_sec: 134223.35540003885, pn_hours: 182.91978896221855, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 100454.24355982577, io_sec: 558056.9967041609 }"),
    ("default", 1e9, 42, 43981, "ExecutionMetrics { latency_sec: 107416.48910043424, pn_hours: 194.57200286830627, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 96538.7860628544, io_sec: 603920.4242630481 }"),
    ("preprod", 1e6, 1, 1, "ExecutionMetrics { latency_sec: 498.455040800991, pn_hours: 0.3059439777416734, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 376.05770395021244, io_sec: 725.340615919812 }"),
    ("preprod", 1e6, 7, 3, "ExecutionMetrics { latency_sec: 595.4408778595648, pn_hours: 0.3002128038458587, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 381.8868647866784, io_sec: 698.879229058413 }"),
    ("preprod", 1e6, 42, 43981, "ExecutionMetrics { latency_sec: 484.57780049922906, pn_hours: 0.3172291117906017, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 365.14516917967876, io_sec: 776.8796332664873 }"),
    ("preprod", 3e7, 1, 1, "ExecutionMetrics { latency_sec: 8901.150256057845, pn_hours: 5.9918853317272065, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 3597.036851132075, io_sec: 17973.75034308587 }"),
    ("preprod", 3e7, 7, 3, "ExecutionMetrics { latency_sec: 8932.821277239524, pn_hours: 5.616106710538781, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 3370.162342619874, io_sec: 16847.821815319738 }"),
    ("preprod", 3e7, 42, 43981, "ExecutionMetrics { latency_sec: 8353.891253042277, pn_hours: 6.180952192129767, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 2994.6265759366947, io_sec: 19256.801315730467 }"),
    ("preprod", 1e9, 1, 1, "ExecutionMetrics { latency_sec: 137524.60483868798, pn_hours: 195.86048088455618, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 106086.26134477419, io_sec: 599011.4698396281 }"),
    ("preprod", 1e9, 7, 3, "ExecutionMetrics { latency_sec: 166874.04214750876, pn_hours: 184.29976635178338, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 102001.21880171838, io_sec: 561477.9400647017 }"),
    ("preprod", 1e9, 42, 43981, "ExecutionMetrics { latency_sec: 145589.999122678, pn_hours: 203.95559813157402, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 92468.42281326852, io_sec: 641771.730460398 }"),
    ("determ", 1e6, 1, 1, "ExecutionMetrics { latency_sec: 383.59377837764697, pn_hours: 0.25300150451627146, vertices: 259, tokens: 256, data_read: 23873824103.388123, data_written: 25263477327.485313, max_memory: 23536495397.09048, avg_memory: 5885560402.946759, cpu_sec: 356.2737086311296, io_sec: 554.5317076274476 }"),
    ("determ", 3e7, 7, 3, "ExecutionMetrics { latency_sec: 3978.995381612302, pn_hours: 5.502348406223585, vertices: 260, tokens: 256, data_read: 714235416449.8505, data_written: 756430083039.8129, max_memory: 235364953970.90488, avg_memory: 78512446803.93385, cpu_sec: 3210.72405990874, io_sec: 16597.730202496165 }"),
    ("determ", 1e9, 42, 43981, "ExecutionMetrics { latency_sec: 31986.01374610126, pn_hours: 181.06648691977844, vertices: 331, tokens: 256, data_read: 23798668982920.055, data_written: 25213290753470.164, max_memory: 318060748609.3309, avg_memory: 107935654435.2954, cpu_sec: 98686.52866362465, io_sec: 553152.8242475777 }"),
];

fn cluster_by_name(name: &str) -> Cluster {
    match name {
        "default" => Cluster::default(),
        "preprod" => Cluster::preproduction(),
        "determ" => Cluster::deterministic(),
        other => panic!("unknown cluster {other}"),
    }
}

#[test]
fn sampler_reproduces_pre_vectorization_values_bit_for_bit() {
    for &(cname, rows, job_seed, run_seed, expected) in PINNED {
        let plan = physical(rows);
        let m = execute(&plan, &cluster_by_name(cname), job_seed, run_seed);
        assert_eq!(
            format!("{m:?}"),
            expected,
            "metrics diverged from the pre-vectorization sampler for \
             cluster={cname} rows={rows:e} job_seed={job_seed} run_seed={run_seed}"
        );
    }
}

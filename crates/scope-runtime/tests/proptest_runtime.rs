//! Property-based tests for the execution simulator's invariants across
//! random workload shapes and seeds.

use proptest::prelude::*;
use scope_lang::bind_script;
use scope_opt::Optimizer;
use scope_runtime::{execute, Cluster, StageGraph};
use scope_workload::TemplateSpec;

fn compiled(seed: u64, day: u32) -> Option<scope_ir::PhysicalPlan> {
    let spec = TemplateSpec::generate(seed);
    let (script, catalog) = spec.instantiate(day, 0);
    let plan = bind_script(&script, &catalog).ok()?;
    let opt = Optimizer::default();
    Some(opt.compile(&plan, &opt.default_config()).ok()?.physical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Core metric invariants: strictly positive costs, PNhours decomposes
    /// into CPU+IO, tokens never exceed vertices.
    #[test]
    fn metrics_are_well_formed(seed in 0u64..5000, day in 0u32..30, run in 0u64..50) {
        let Some(plan) = compiled(seed, day) else { return Ok(()) };
        let m = execute(&plan, &Cluster::default(), seed, run);
        prop_assert!(m.latency_sec > 0.0);
        prop_assert!(m.pn_hours > 0.0);
        prop_assert!(m.data_read > 0.0);
        prop_assert!(m.vertices >= 1);
        prop_assert!(m.tokens >= 1 && m.tokens <= m.vertices);
        prop_assert!((m.pn_hours * 3600.0 - (m.cpu_sec + m.io_sec)).abs() < 1e-6);
    }

    /// Bytes moved and vertex counts are run-invariant (the paper's §4.3
    /// observation that grounds the validation model); only times vary.
    #[test]
    fn data_and_vertices_are_noise_free(seed in 0u64..2000, run_a in 0u64..20, run_b in 20u64..40) {
        let Some(plan) = compiled(seed, 3) else { return Ok(()) };
        let cluster = Cluster::default();
        let a = execute(&plan, &cluster, seed, run_a);
        let b = execute(&plan, &cluster, seed, run_b);
        prop_assert_eq!(a.data_read.to_bits(), b.data_read.to_bits());
        prop_assert_eq!(a.data_written.to_bits(), b.data_written.to_bits());
        prop_assert_eq!(a.vertices, b.vertices);
        prop_assert_eq!(a.tokens, b.tokens);
    }

    /// Same seeds => bit-identical metrics (full determinism).
    #[test]
    fn execution_is_reproducible(seed in 0u64..2000, run in 0u64..30) {
        let Some(plan) = compiled(seed, 1) else { return Ok(()) };
        let cluster = Cluster::default();
        let a = execute(&plan, &cluster, seed, run);
        let b = execute(&plan, &cluster, seed, run);
        prop_assert_eq!(a, b);
    }

    /// The deterministic cluster is a lower-variance bound: its PNhours
    /// never exceeds the noisy cluster's expected inflation by much, and
    /// stage accounting matches the graph.
    #[test]
    fn stage_graph_accounts_all_vertices(seed in 0u64..2000) {
        let Some(plan) = compiled(seed, 0) else { return Ok(()) };
        let cluster = Cluster::default();
        let graph = StageGraph::build(&plan, &cluster.config);
        let m = execute(&plan, &cluster, seed, 0);
        prop_assert_eq!(m.vertices, graph.vertices());
        prop_assert_eq!(m.tokens, graph.tokens());
        // Every stage has at least one member and positive parallelism.
        for s in &graph.stages {
            prop_assert!(!s.members.is_empty());
            prop_assert!(s.parallelism >= 1);
        }
    }
}

//! `qo-lint` — a workspace-specific static analysis pass enforcing the
//! repo's determinism contract (byte-identical reports and SIS hint files
//! across thread counts and cache knobs; see ARCHITECTURE.md "Determinism
//! contract").
//!
//! The dynamic determinism tests in `tests/determinism.rs` can only catch a
//! hazard a seed happens to expose; this pass catches the *constructions*
//! that produce such hazards before they ship. It is a hand-rolled
//! lexer/token scanner (`lexer`) plus six token-level rules (`rules`) — no
//! `syn`, in the same spirit as PR 1's hand-rolled serde derive, because
//! the workspace vendors every dependency by hand.
//!
//! # Rules
//!
//! | id   | key              | protects against |
//! |------|------------------|------------------|
//! | QL01 | `unordered-iter` | iterating `HashMap`/`FxHashMap`/`HashSet`/`FxHashSet` in output-affecting code (iteration order is seed/layout-dependent) |
//! | QL02 | `ambient-entropy`| `thread_rng`, `from_entropy`, `SystemTime`, `Instant::now` in steering code — all RNG must flow from the named seed helpers in `scope_ir::ids` |
//! | QL03 | `seed-salt`      | raw seed-salt integer literals outside `scope_ir::ids` (the centralized seed vocabulary) |
//! | QL04 | `derived-memo-eq`| deriving `PartialEq`/`Eq`/`Hash`/`Serialize`/`Deserialize` on a struct carrying an atomic fingerprint memo (the memo must stay invisible to equality/serde) |
//! | QL05 | `unwrap-expect`  | `.unwrap()`/`.expect(` in the staged pipeline, `ProductionSim`, flighting, and snapshot/restore (`scope-state`) paths — typed errors only |
//! | QL06 | `par-accumulate` | accumulation (`+=`, `.sum()`, `.reduce()`, `.fold()`, `.for_each()`) inside rayon regions — reduces go through the serial deterministic reduce helpers |
//!
//! QL00 (`allow-syntax`) reports malformed allow annotations themselves.
//!
//! # Allowlisting
//!
//! An intentional site carries a justification comment on the same line or
//! the line above:
//!
//! ```text
//! // qo-lint: allow(unordered-iter) — counters only, aggregation is order-free
//! ```
//!
//! The reason after the closing parenthesis is mandatory; an allow without
//! one (or with an unknown key) is itself a QL00 diagnostic. Rule ids
//! (`QL01`) are accepted as keys too. Some paths are allowlisted wholesale
//! in [`rule_applies`] (e.g. sharded-cache internals for QL01, the bench
//! crate for QL02, `scope_ir::ids` itself for QL03).

pub mod lexer;
pub mod rules;

use lexer::{Lexed, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One finding: `file:line:rule` plus the allow key and a human message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub key: &'static str,
    pub message: String,
}

impl Diagnostic {
    /// The canonical single-line rendering: `file:line:rule[key] message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}[{}] {}",
            self.file, self.line, self.rule, self.key, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs table.
pub struct RuleInfo {
    pub id: &'static str,
    pub key: &'static str,
    pub summary: &'static str,
}

/// Every rule the pass knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "QL00",
        key: "allow-syntax",
        summary: "qo-lint allow annotations must name a known rule key and carry a justification",
    },
    RuleInfo {
        id: "QL01",
        key: "unordered-iter",
        summary: "no unordered HashMap/FxHashMap/HashSet/FxHashSet iteration in output-affecting code",
    },
    RuleInfo {
        id: "QL02",
        key: "ambient-entropy",
        summary: "no ambient entropy or wall-clock (thread_rng/from_entropy/SystemTime/Instant::now) in steering code",
    },
    RuleInfo {
        id: "QL03",
        key: "seed-salt",
        summary: "no raw seed-salt integer literals outside scope_ir::ids",
    },
    RuleInfo {
        id: "QL04",
        key: "derived-memo-eq",
        summary: "no derived PartialEq/Eq/Hash/serde impls on structs carrying an atomic fingerprint memo",
    },
    RuleInfo {
        id: "QL05",
        key: "unwrap-expect",
        summary: "no .unwrap()/.expect( in the staged pipeline, ProductionSim, or flighting paths",
    },
    RuleInfo {
        id: "QL06",
        key: "par-accumulate",
        summary: "no accumulation into shared state inside rayon regions; use the serial reduce helpers",
    },
];

/// Look a rule up by allow key *or* rule id.
#[must_use]
pub fn rule_by_key(key: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.key == key || r.id == key)
}

/// Does `rule` apply to the file at (workspace-relative, `/`-separated)
/// `path`? Encodes the per-rule path policy:
///
/// * all rules: only `crates/*/src/**`, `src/**`, and `examples/**` are
///   scanned at all (test/bench directories exercise, not produce, the
///   steered outputs);
/// * QL01: sharded-cache internals and counter aggregation are allowlisted
///   (`scope-ir/src/sharded.rs`, `scope-ir/src/counters.rs`) — both
///   aggregate per-shard state behind order-free reductions;
/// * QL02: the bench/timing crate (`crates/bench/**`) measures wall-clock
///   by design;
/// * QL03: `scope-ir/src/ids.rs` IS the seed vocabulary;
/// * QL05: scoped *to* the five staged pipeline functions
///   (`core/src/stages.rs`), the pipeline driver (`core/src/pipeline.rs`),
///   `ProductionSim` (`core/src/simulation.rs`), the multi-tenant fleet
///   service (`core/src/fleet.rs`), the snapshot/restore path
///   (`core/src/snapshot.rs` and the whole `scope-state` crate — a corrupt
///   snapshot must surface as a typed `SnapshotError`, never a panic), the
///   task-queue compile engine (`scope-opt/src/tasks.rs` — every compile,
///   budgeted or not, runs through it, so it must fail as a typed
///   `CompileError`), and the flighting crate.
#[must_use]
pub fn rule_applies(rule_id: &str, path: &str) -> bool {
    let in_scanned_tree = (path.starts_with("crates/") && path.contains("/src/"))
        || path.starts_with("src/")
        || path.starts_with("examples/");
    if !in_scanned_tree {
        return false;
    }
    match rule_id {
        "QL01" => !matches!(
            path,
            "crates/scope-ir/src/sharded.rs" | "crates/scope-ir/src/counters.rs"
        ),
        "QL02" => !path.starts_with("crates/bench/"),
        "QL03" => path != "crates/scope-ir/src/ids.rs",
        "QL05" => {
            matches!(
                path,
                "crates/core/src/stages.rs"
                    | "crates/core/src/pipeline.rs"
                    | "crates/core/src/simulation.rs"
                    | "crates/core/src/fleet.rs"
                    | "crates/core/src/snapshot.rs"
                    | "crates/scope-opt/src/tasks.rs"
            ) || path.starts_with("crates/flighting/src/")
                || path.starts_with("crates/scope-state/src/")
        }
        _ => true,
    }
}

/// Everything the rules need about one file: the token stream, which
/// tokens sit inside test code, per-token nesting depth, and the allow
/// annotations keyed by the line they cover.
pub struct FileCtx {
    pub path: String,
    pub lx: Lexed,
    /// `in_test[i]` — token `i` is inside a `#[cfg(test)]` module or a
    /// `#[test]` function body.
    pub in_test: Vec<bool>,
    /// Combined `(`/`[`/`{` nesting depth *before* each token.
    pub depth: Vec<i32>,
    /// Lines covered by an allow annotation → the allowed keys.
    allows: BTreeMap<u32, BTreeSet<String>>,
    /// Diagnostics produced while parsing annotations (QL00).
    allow_diags: Vec<Diagnostic>,
}

impl FileCtx {
    #[must_use]
    pub fn new(path: &str, source: &str) -> Self {
        let lx = lexer::lex(source);
        let in_test = mark_test_regions(&lx);
        let depth = depths(&lx);
        let mut ctx = FileCtx {
            path: path.to_string(),
            lx,
            in_test,
            depth,
            allows: BTreeMap::new(),
            allow_diags: Vec::new(),
        };
        ctx.parse_allows();
        ctx
    }

    /// Is `key` (an allow key) granted on `line`?
    #[must_use]
    pub fn allowed(&self, line: u32, key: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|keys| keys.contains(key))
    }

    /// Emit a diagnostic for rule `id` at `line` unless the line carries a
    /// matching allow annotation.
    pub fn emit(&self, out: &mut Vec<Diagnostic>, id: &'static str, line: u32, message: String) {
        let info = RULES
            .iter()
            .find(|r| r.id == id)
            .expect("rule ids are static");
        if self.allowed(line, info.key) || self.allowed(line, info.id) {
            return;
        }
        out.push(Diagnostic {
            file: self.path.clone(),
            line,
            rule: info.id,
            key: info.key,
            message,
        });
    }

    /// Parse `qo-lint: allow(key[, key…]) — reason` annotations out of the
    /// non-doc comments. A trailing comment covers its own line; a
    /// standalone comment covers the next code line.
    fn parse_allows(&mut self) {
        const MARKER: &str = "qo-lint: allow(";
        for c in &self.lx.comments {
            if c.doc {
                continue;
            }
            let Some(at) = c.text.find(MARKER) else {
                continue;
            };
            let after = &c.text[at + MARKER.len()..];
            let Some(close) = after.find(')') else {
                self.allow_diags.push(Diagnostic {
                    file: self.path.clone(),
                    line: c.line,
                    rule: "QL00",
                    key: "allow-syntax",
                    message: "unterminated qo-lint allow annotation".to_string(),
                });
                continue;
            };
            let keys: Vec<&str> = after[..close]
                .split(',')
                .map(str::trim)
                .filter(|k| !k.is_empty())
                .collect();
            let reason = after[close + 1..]
                .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
                .trim();
            let mut valid: BTreeSet<String> = BTreeSet::new();
            for key in &keys {
                match rule_by_key(key) {
                    Some(info) => {
                        valid.insert(info.key.to_string());
                    }
                    None => self.allow_diags.push(Diagnostic {
                        file: self.path.clone(),
                        line: c.line,
                        rule: "QL00",
                        key: "allow-syntax",
                        message: format!("unknown qo-lint rule key `{key}` in allow annotation"),
                    }),
                }
            }
            if reason.is_empty() {
                self.allow_diags.push(Diagnostic {
                    file: self.path.clone(),
                    line: c.line,
                    rule: "QL00",
                    key: "allow-syntax",
                    message: "qo-lint allow annotation needs a justification after the closing \
                              parenthesis"
                        .to_string(),
                });
                continue; // an unjustified allow grants nothing
            }
            if keys.is_empty() {
                self.allow_diags.push(Diagnostic {
                    file: self.path.clone(),
                    line: c.line,
                    rule: "QL00",
                    key: "allow-syntax",
                    message: "qo-lint allow annotation names no rule keys".to_string(),
                });
                continue;
            }
            // Trailing comment (code before it on its line) covers that
            // line; standalone covers the next code line.
            let trailing = self
                .lx
                .tokens
                .iter()
                .any(|t| t.line == c.line && t.offset < c.offset);
            let target = if trailing {
                Some(c.line)
            } else {
                self.lx
                    .tokens
                    .iter()
                    .find(|t| t.offset > c.end_offset)
                    .map(|t| t.line)
            };
            if let Some(line) = target {
                self.allows.entry(line).or_default().extend(valid.clone());
                // Multi-line comments also cover their own span.
                self.allows.entry(c.line).or_default().extend(valid);
            }
        }
    }
}

/// Mark every token inside `#[cfg(test)] mod … { }` / `#[test] fn … { }`
/// regions. Attributes containing the bare identifier `test` count, except
/// when the attribute also contains `not` (`#[cfg(not(test))]` is
/// production code).
fn mark_test_regions(lx: &Lexed) -> Vec<bool> {
    let n = lx.tokens.len();
    let mut in_test = vec![false; n];
    let mut i = 0;
    while i < n {
        if lx.is_punct(i, '#') && lx.is_punct(i + 1, '[') {
            // Find the matching `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test = false;
            let mut negated = false;
            while j < n {
                match lx.kind(j) {
                    Some(Tok::Punct('[')) => depth += 1,
                    Some(Tok::Punct(']')) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(Tok::Ident(s)) if s == "test" => is_test = true,
                    Some(Tok::Ident(s)) if s == "not" => negated = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test && !negated {
                // Skip further attributes/doc comments, find the item's
                // opening `{`, and mark through its matching `}`.
                let mut k = j + 1;
                while k < n && lx.is_punct(k, '#') && lx.is_punct(k + 1, '[') {
                    let mut d = 0i32;
                    while k < n {
                        match lx.kind(k) {
                            Some(Tok::Punct('[')) => d += 1,
                            Some(Tok::Punct(']')) => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                while k < n && !lx.is_punct(k, '{') && !lx.is_punct(k, ';') {
                    k += 1;
                }
                if lx.is_punct(k, '{') {
                    let mut braces = 0i32;
                    let mut m = k;
                    while m < n {
                        match lx.kind(m) {
                            Some(Tok::Punct('{')) => braces += 1,
                            Some(Tok::Punct('}')) => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    let end = m.min(n.saturating_sub(1));
                    for flag in &mut in_test[i..=end] {
                        *flag = true;
                    }
                    i = m + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Combined bracket depth before each token.
fn depths(lx: &Lexed) -> Vec<i32> {
    let mut out = Vec::with_capacity(lx.tokens.len());
    let mut d = 0i32;
    for t in &lx.tokens {
        out.push(d);
        match t.kind {
            Tok::Punct('(' | '[' | '{') => d += 1,
            Tok::Punct(')' | ']' | '}') => d -= 1,
            _ => {}
        }
    }
    out
}

/// Lint one file's source under its workspace-relative path. This is the
/// unit the golden-fixture tests drive directly.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(rel_path, source);
    let mut out = ctx.allow_diags.clone();
    if rule_applies("QL01", rel_path) {
        rules::ql01_unordered_iter(&ctx, &mut out);
    }
    if rule_applies("QL02", rel_path) {
        rules::ql02_ambient_entropy(&ctx, &mut out);
    }
    if rule_applies("QL03", rel_path) {
        rules::ql03_seed_salt(&ctx, &mut out);
    }
    if rule_applies("QL04", rel_path) {
        rules::ql04_derived_memo_eq(&ctx, &mut out);
    }
    if rule_applies("QL05", rel_path) {
        rules::ql05_unwrap_expect(&ctx, &mut out);
    }
    if rule_applies("QL06", rel_path) {
        rules::ql06_par_accumulate(&ctx, &mut out);
    }
    out.sort();
    out
}

/// Collect the `.rs` files the pass scans, workspace-relative and sorted
/// (deterministic diagnostic order). Scanned trees: `crates/*/src`,
/// `src/`, `examples/`. `vendor/` (external stand-ins), `target/`, test
/// and bench directories, and fixture directories are never scanned.
#[must_use]
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src"), root.join("examples")];
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = crates
            .filter_map(Result::ok)
            .map(|e| e.path().join("src"))
            .collect();
        dirs.sort();
        roots.extend(dirs);
    }
    for r in roots {
        walk(&r, &mut files);
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    rel
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint the whole workspace under `root`.
#[must_use]
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in collect_files(root) {
        let Ok(source) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        out.extend(lint_source(&rel_str, &source));
    }
    out.sort();
    out
}

/// Walk upward from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Render diagnostics as the machine-readable JSON document `--json`
/// emits. Hand-rolled (like everything else here) so the lint crate stays
/// dependency-free.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{\n  \"tool\": \"qo-lint\",\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"key\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            esc(&d.file),
            d.line,
            d.rule,
            d.key,
            esc(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!("  ],\n  \"count\": {}\n}}\n", diags.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_modules_and_test_fns() {
        let src = r#"
fn prod() { let x = 1; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let y = 2; }
}
fn prod2() { let z = 3; }
"#;
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        let tok_test = |name: &str| {
            let i = ctx
                .lx
                .tokens
                .iter()
                .position(|t| t.kind == Tok::Ident(name.to_string()))
                .unwrap();
            ctx.in_test[i]
        };
        assert!(!tok_test("x"));
        assert!(tok_test("y"));
        assert!(!tok_test("z"));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nmod prod { fn f() { let x = 1; } }";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx.in_test.iter().all(|&t| !t));
    }

    #[test]
    fn allow_annotations_cover_their_line_and_the_next() {
        let src = "\
// qo-lint: allow(unordered-iter) — standalone covers next line
let a = 1;
let b = 2; // qo-lint: allow(seed-salt) — trailing covers its own line
";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx.allowed(2, "unordered-iter"));
        assert!(!ctx.allowed(3, "unordered-iter"));
        assert!(ctx.allowed(3, "seed-salt"));
        assert!(ctx.allow_diags.is_empty());
    }

    #[test]
    fn allow_without_reason_is_ql00_and_grants_nothing() {
        let src = "let a = 1; // qo-lint: allow(unordered-iter)\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(!ctx.allowed(1, "unordered-iter"));
        assert_eq!(ctx.allow_diags.len(), 1);
        assert_eq!(ctx.allow_diags[0].rule, "QL00");
    }

    #[test]
    fn unknown_allow_key_is_ql00() {
        let src = "let a = 1; // qo-lint: allow(no-such-rule) — whatever\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert_eq!(ctx.allow_diags.len(), 1);
        assert!(ctx.allow_diags[0].message.contains("no-such-rule"));
    }

    #[test]
    fn rule_ids_work_as_allow_keys() {
        let src = "let a = 1; // qo-lint: allow(QL03) — id instead of key\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx.allowed(1, "seed-salt"));
    }

    #[test]
    fn doc_comments_do_not_enact_allows() {
        let src = "/// qo-lint: allow(seed-salt) — just documenting the syntax\nlet a = 1;\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(!ctx.allowed(2, "seed-salt"));
        assert!(ctx.allow_diags.is_empty());
    }

    #[test]
    fn path_policies() {
        assert!(rule_applies("QL01", "crates/core/src/stages.rs"));
        assert!(!rule_applies("QL01", "crates/scope-ir/src/sharded.rs"));
        assert!(!rule_applies("QL02", "crates/bench/src/bin/probe.rs"));
        assert!(rule_applies("QL02", "crates/core/src/pipeline.rs"));
        assert!(!rule_applies("QL03", "crates/scope-ir/src/ids.rs"));
        assert!(rule_applies("QL05", "crates/flighting/src/service.rs"));
        assert!(rule_applies("QL05", "crates/scope-state/src/frame.rs"));
        assert!(rule_applies("QL05", "crates/core/src/snapshot.rs"));
        assert!(rule_applies("QL05", "crates/core/src/fleet.rs"));
        assert!(rule_applies("QL05", "crates/scope-opt/src/tasks.rs"));
        assert!(!rule_applies("QL05", "crates/scope-opt/src/search.rs"));
        assert!(!rule_applies("QL05", "crates/personalizer/src/bandit.rs"));
        assert!(!rule_applies("QL01", "crates/core/tests/whatever.rs"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: "QL01",
            key: "unordered-iter",
            message: "say \"hi\"".into(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("\"count\": 1"));
    }
}

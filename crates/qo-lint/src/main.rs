//! `qo-lint` CLI — run the determinism rules over the workspace.
//!
//! ```text
//! cargo run -p qo-lint --            # report findings (exit 0)
//! cargo run -p qo-lint -- --deny     # exit nonzero on any finding (CI gate)
//! cargo run -p qo-lint -- --json     # machine-readable report on stdout
//! cargo run -p qo-lint -- --list-rules
//! cargo run -p qo-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("qo-lint: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "qo-lint — determinism & seed-discipline static analysis\n\n\
                     USAGE: qo-lint [--deny] [--json] [--list-rules] [--root PATH]\n\n\
                     --deny        exit nonzero when any finding remains\n\
                     --json        machine-readable findings on stdout\n\
                     --list-rules  print the rule table\n\
                     --root PATH   workspace root (default: walk up from cwd)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("qo-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if list_rules {
        for rule in qo_lint::RULES {
            println!("{} [{}] {}", rule.id, rule.key, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd is readable");
            match qo_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("qo-lint: no workspace root above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let diags = qo_lint::lint_workspace(&root);
    if json {
        print!("{}", qo_lint::render_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        if diags.is_empty() {
            println!("qo-lint: clean ({} rules)", qo_lint::RULES.len() - 1);
        } else {
            println!("qo-lint: {} finding(s)", diags.len());
        }
    }
    if deny && !diags.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! A hand-rolled Rust lexer — the token layer under the `qo-lint` rules.
//!
//! Deliberately *not* `syn`: the workspace vendors its external
//! dependencies by hand (see `vendor/`), and the determinism rules only
//! need a faithful token stream, not a syntax tree. The lexer handles the
//! parts of Rust's lexical grammar that matter for not mis-reading real
//! code: nested block comments, raw strings with arbitrary `#` runs, byte
//! and raw-byte strings, raw identifiers, char literals vs lifetimes, and
//! numeric literals with prefixes/suffixes/underscores.
//!
//! Comments are lexed into a side channel (they carry the
//! `qo-lint: allow(...)` annotations); doc comments (`///`, `//!`,
//! `/** */`) are recognized but excluded from annotation parsing so
//! documentation can *mention* the allow syntax without enacting it.

/// One lexed token. Comments and whitespace are not tokens — comments go
/// to [`Lexed::comments`], whitespace is dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword. Raw identifiers (`r#type`) are unescaped to
    /// their bare name.
    Ident(String),
    /// A lifetime (`'a`, `'static`), without the leading quote.
    Lifetime(String),
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal: plain, raw, byte, raw-byte.
    Str,
    /// Integer literal, verbatim text (prefix, underscores, suffix kept).
    Int(String),
    /// Float literal.
    Float,
    /// One punctuation character. Multi-character operators appear as
    /// consecutive `Punct` tokens; [`Token::joint`] says whether the next
    /// token follows with no gap (so `+=` is `+`·`=` with `joint` set).
    Punct(char),
}

/// A token plus its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// Byte offset of the token start.
    pub offset: usize,
    /// True when the next token starts immediately after this one
    /// (no whitespace/comment gap) — used to read compound operators.
    pub joint: bool,
}

/// One comment, for the annotation side channel.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the first character of the comment.
    pub line: u32,
    /// Byte offset of the comment start.
    pub offset: usize,
    /// Byte offset one past the comment end.
    pub end_offset: usize,
    /// Full comment text, including the `//` / `/*` sigils.
    pub text: String,
    /// `///`, `//!`, `/**`, `/*!` — excluded from annotation parsing.
    pub doc: bool,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Kind of the token at `i`, or `None` past the end.
    pub fn kind(&self, i: usize) -> Option<&Tok> {
        self.tokens.get(i).map(|t| &t.kind)
    }

    /// True when token `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        matches!(self.kind(i), Some(Tok::Ident(s)) if s == name)
    }

    /// True when token `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.kind(i), Some(Tok::Punct(p)) if *p == c)
    }
}

/// Lex `source` into tokens + comments. Unterminated constructs (strings,
/// block comments) consume to end of input rather than erroring: a lint
/// must keep going on the code people actually write mid-edit.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        src: source.as_bytes(),
        text: source,
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    text: &'s str,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, line),
                b'\'' => self.quote(start, line),
                b'"' => {
                    self.string_plain();
                    self.push(Tok::Str, line, start);
                }
                b'0'..=b'9' => self.number(start, line),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.ident_or_prefixed(start, line)
                }
                _ => {
                    self.pos += 1;
                    self.push(Tok::Punct(b as char), line, start);
                }
            }
        }
        // `joint` for token i = token i+1 starts exactly where i ended. The
        // lexer never records end offsets, so recompute conservatively: two
        // consecutive Puncts on one line, adjacent byte offsets.
        for i in 0..self.out.tokens.len().saturating_sub(1) {
            let next_off = self.out.tokens[i + 1].offset;
            let t = &mut self.out.tokens[i];
            if let Tok::Punct(_) = t.kind {
                t.joint = next_off == t.offset + 1;
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: Tok, line: u32, offset: usize) {
        self.out.tokens.push(Token {
            kind,
            line,
            offset,
            joint: false,
        });
    }

    fn count_newlines(&mut self, from: usize) {
        self.line += self.src[from..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = self.text[start..self.pos].to_string();
        let doc = text.starts_with("///") && !text.starts_with("////") || text.starts_with("//!");
        self.out.comments.push(Comment {
            line,
            offset: start,
            end_offset: self.pos,
            text,
            doc,
        });
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        // Nested block comments: track depth.
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        let text = self.text[start..self.pos].to_string();
        let doc = text.starts_with("/**") && !text.starts_with("/***") || text.starts_with("/*!");
        self.out.comments.push(Comment {
            line,
            offset: start,
            end_offset: self.pos,
            text,
            doc,
        });
        self.count_newlines(start);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, start: usize, line: u32) {
        // Decide by shape: '\... is always a char literal; 'X' (any single
        // char followed by a closing quote) is a char literal; otherwise a
        // lifetime ('a, 'static, the odd '_).
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.pos += 2;
                while self.pos < self.src.len() {
                    match self.src[self.pos] {
                        b'\\' => self.pos += 2,
                        b'\'' => {
                            self.pos += 1;
                            break;
                        }
                        _ => self.pos += 1,
                    }
                }
                self.push(Tok::Char, line, start);
            }
            Some(_) => {
                // One char (possibly multi-byte), then look for the quote.
                let rest = &self.text[start + 1..];
                let mut chars = rest.char_indices();
                let (_, first) = chars.next().expect("peeked non-empty");
                let after = start + 1 + first.len_utf8();
                if self.src.get(after) == Some(&b'\'') {
                    self.pos = after + 1;
                    self.push(Tok::Char, line, start);
                } else {
                    // Lifetime: consume ident chars after the quote.
                    self.pos = start + 1;
                    let name_start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos] == b'_'
                            || self.src[self.pos].is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    let name = self.text[name_start..self.pos].to_string();
                    self.push(Tok::Lifetime(name), line, start);
                }
            }
            None => {
                self.pos += 1;
                self.push(Tok::Punct('\''), line, start);
            }
        }
    }

    /// Plain (non-raw) string body, cursor on the opening `"`.
    fn string_plain(&mut self) {
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.count_newlines(start);
    }

    /// Raw string body, cursor on the first `#` or the `"`.
    fn string_raw(&mut self) {
        let start = self.pos;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.pos += 1;
        'scan: while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                // Need `hashes` following '#'s to close.
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        self.pos += 1;
                        continue 'scan;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.count_newlines(start);
    }

    fn number(&mut self, start: usize, line: u32) {
        let radix_prefixed = self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'));
        if radix_prefixed {
            self.pos += 2;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            self.push(
                Tok::Int(self.text[start..self.pos].to_string()),
                line,
                start,
            );
            return;
        }
        let mut float = false;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_digit() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && !float {
                // `1.5` is a float; `1..n` is a range; `1.max(2)` a call.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            } else if (b == b'e' || b == b'E')
                && matches!(self.peek(1), Some(b'+' | b'-') | Some(b'0'..=b'9'))
                && self.text[start..self.pos]
                    .chars()
                    .all(|c| c.is_ascii_digit() || c == '_' || c == '.')
            {
                float = true;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
            } else if b.is_ascii_alphabetic() {
                // Suffix (u64, f32, usize…). `f32`/`f64` suffixes make it a
                // float token; the suffix is consumed either way.
                let suffix_start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                if self.text[suffix_start..self.pos].starts_with('f') {
                    float = true;
                }
                break;
            } else {
                break;
            }
        }
        if float {
            self.push(Tok::Float, line, start);
        } else {
            self.push(
                Tok::Int(self.text[start..self.pos].to_string()),
                line,
                start,
            );
        }
    }

    fn ident_or_prefixed(&mut self, start: usize, line: u32) {
        // Read the identifier run first.
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.text[start..self.pos];
        let next = self.peek(0);
        match (word, next) {
            // Byte-char literal b'x'.
            ("b", Some(b'\'')) => {
                let save = self.pos;
                self.pos += 1; // consume the quote, reuse char scanning
                match self.peek(0) {
                    Some(b'\\') => {
                        self.pos += 1;
                        while self.pos < self.src.len() {
                            match self.src[self.pos] {
                                b'\\' => self.pos += 2,
                                b'\'' => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => self.pos += 1,
                            }
                        }
                        self.push(Tok::Char, line, start);
                    }
                    Some(_) if self.peek(1) == Some(b'\'') => {
                        self.pos += 2;
                        self.push(Tok::Char, line, start);
                    }
                    _ => {
                        // Not a byte char after all: emit `b`, re-lex quote.
                        self.pos = save;
                        self.push(Tok::Ident(word.to_string()), line, start);
                    }
                }
            }
            // String-literal prefixes.
            ("b" | "r" | "br" | "rb", Some(b'"')) => {
                if word.contains('r') {
                    self.string_raw();
                } else {
                    self.string_plain();
                }
                self.push(Tok::Str, line, start);
            }
            ("r" | "br" | "rb", Some(b'#')) => {
                // Either a raw string `r#"…"#` or a raw identifier `r#type`.
                let mut k = 0usize;
                while self.peek(k) == Some(b'#') {
                    k += 1;
                }
                if self.peek(k) == Some(b'"') {
                    self.string_raw();
                    self.push(Tok::Str, line, start);
                } else if word == "r" && k == 1 {
                    // Raw identifier: skip `#`, lex the bare name.
                    self.pos += 1;
                    let name_start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos] == b'_'
                            || self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] >= 0x80)
                    {
                        self.pos += 1;
                    }
                    self.push(
                        Tok::Ident(self.text[name_start..self.pos].to_string()),
                        line,
                        start,
                    );
                } else {
                    self.push(Tok::Ident(word.to_string()), line, start);
                }
            }
            _ => self.push(Tok::Ident(word.to_string()), line, start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_plain_tokens_with_lines() {
        let l = lex("let x = 42;\nlet y = x + 1;");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Int("42".into()) && t.line == 1));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Ident("y".into()) && t.line == 2));
    }

    #[test]
    fn raw_strings_swallow_banned_words() {
        // Contents of strings must never look like identifiers to rules.
        let l = lex(r####"let s = r#"thread_rng SystemTime"#; let t = "Instant::now";"####);
        assert!(!idents(r####"let s = r#"thread_rng"#;"####).contains(&"thread_rng".to_string()));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Str).count(), 2);
    }

    #[test]
    fn raw_string_hash_runs_terminate_correctly() {
        // The inner `"#` must not close an `r##"…"##` string.
        let src = r###"let s = r##"has "# inside"##; let x = 1;"###;
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.kind == Tok::Int("1".into())));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Str).count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.kind == Tok::Ident("let".into())));
    }

    #[test]
    fn block_comment_counts_lines() {
        let l = lex("/* a\nb\nc */ let x = 1;");
        let let_tok = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("let".into()))
            .unwrap();
        assert_eq!(let_tok.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l =
            lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; let s: &'static str = \"\"; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Lifetime(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 2);
    }

    #[test]
    fn byte_and_unicode_char_literals() {
        let l = lex("let a = b'x'; let b = b'\\''; let c = '\u{00e9}';");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 3);
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn numeric_literals_with_prefixes_and_suffixes() {
        let l = lex(
            "let a = 0x9806_0d0d; let b = 1_000u64; let c = 1.5e-3; let d = 2f64; let r = 0..10;",
        );
        let ints: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Int(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec!["0x9806_0d0d", "1_000u64", "0", "10"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Float).count(), 2);
    }

    #[test]
    fn method_call_on_int_literal_is_not_a_float() {
        let l = lex("let m = 1.max(2);");
        assert!(l.tokens.iter().any(|t| t.kind == Tok::Int("1".into())));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Float).count(), 0);
    }

    #[test]
    fn doc_comments_are_marked() {
        let l = lex("/// doc\n//! inner\n// plain\n/** block doc */\n/* plain block */ fn f() {}");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn joint_puncts_reconstruct_compound_operators() {
        let l = lex("x += 1; y == 2; z -= 3;");
        // `+` immediately followed by `=` is joint; `x` then `+` is not.
        let plus = l
            .tokens
            .iter()
            .position(|t| t.kind == Tok::Punct('+'))
            .unwrap();
        assert!(l.tokens[plus].joint);
        let eq1 = l
            .tokens
            .iter()
            .position(|t| t.kind == Tok::Punct('='))
            .unwrap();
        assert_eq!(eq1, plus + 1);
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panic() {
        let l = lex("let s = \"never closed");
        assert!(l.tokens.iter().any(|t| t.kind == Tok::Str));
    }
}

//! The six determinism rules, as token-stream scanners over [`FileCtx`].
//!
//! These are deliberately *lexical* heuristics: no type inference, no name
//! resolution. Each rule documents its recognition patterns; where a
//! pattern can't prove a hazard (e.g. a hash-typed receiver threaded
//! through a helper), the dynamic determinism tests remain the backstop.
//! False positives are expected to be rare and carry inline
//! `qo-lint: allow(...)` justifications.

use crate::lexer::Tok;
use crate::{Diagnostic, FileCtx};

/// Unordered-container type names QL01 tracks.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iteration methods whose order is the container's internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

fn ident(ctx: &FileCtx, i: usize) -> Option<&str> {
    match ctx.lx.kind(i)? {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Is token `i` a lone `:` (not part of `::`)?
fn lone_colon(ctx: &FileCtx, i: usize) -> bool {
    ctx.lx.is_punct(i, ':')
        && !ctx.lx.is_punct(i + 1, ':')
        && !(i > 0 && ctx.lx.is_punct(i - 1, ':'))
}

/// Is token `i` a lone `=` (not `==`, `<=`, `>=`, `!=`, `=>`, `+=`, …)?
fn lone_eq(ctx: &FileCtx, i: usize) -> bool {
    if !ctx.lx.is_punct(i, '=') || ctx.lx.is_punct(i + 1, '=') || ctx.lx.is_punct(i + 1, '>') {
        return false;
    }
    if i == 0 {
        return true;
    }
    !matches!(
        ctx.lx.kind(i - 1),
        Some(Tok::Punct(
            '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
        ))
    )
}

/// QL01 — unordered hash-container iteration.
///
/// Recognizes identifiers bound to a hash type anywhere in the file
/// (`name: FxHashMap<…>` declarations — fields, params, lets — and
/// `let name = FxHashMap::new()/default()` initializers), then flags
/// `recv.iter()/keys()/values()/drain()/…` method calls and
/// `for … in [&[mut]] recv` loops whose receiver is such an identifier.
pub fn ql01_unordered_iter(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let n = ctx.lx.tokens.len();
    // Pass 1: hash-typed identifiers.
    let mut hash_vars: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for i in 0..n {
        let Some(name) = ident(ctx, i) else { continue };
        // `name: …HashMap…` within the next few tokens (type position).
        if lone_colon(ctx, i + 1) {
            let mut j = i + 2;
            let mut steps = 0;
            while j < n && steps < 12 {
                match ctx.lx.kind(j) {
                    Some(Tok::Ident(t)) if HASH_TYPES.contains(&t.as_str()) => {
                        hash_vars.insert(name.to_string());
                        break;
                    }
                    Some(Tok::Punct(',' | ';' | ')' | '{' | '}')) => break,
                    Some(Tok::Punct('=')) if lone_eq(ctx, j) => break,
                    _ => {}
                }
                j += 1;
                steps += 1;
            }
        }
        // `let name = FxHashMap::new()` / `…::default()`.
        if lone_eq(ctx, i + 1) {
            if let Some(t) = ident(ctx, i + 2) {
                if HASH_TYPES.contains(&t) {
                    hash_vars.insert(name.to_string());
                }
            }
        }
    }
    // Pass 2a: `recv.method(` sites.
    for i in 0..n {
        if ctx.in_test[i] {
            continue;
        }
        let Some(m) = ident(ctx, i) else { continue };
        if !ITER_METHODS.contains(&m) {
            continue;
        }
        if !(i >= 2 && ctx.lx.is_punct(i - 1, '.') && ctx.lx.is_punct(i + 1, '(')) {
            continue;
        }
        let Some(recv) = ident(ctx, i - 2) else {
            continue;
        };
        if hash_vars.contains(recv) {
            ctx.emit(
                out,
                "QL01",
                ctx.lx.tokens[i].line,
                format!(
                    "`.{m}()` on unordered container `{recv}` — iteration order is \
                     layout-dependent; iterate a sorted view or reduce order-free"
                ),
            );
        }
    }
    // Pass 2b: `for … in [&[mut]] path` loops.
    for i in 0..n {
        if ctx.in_test[i] || !ctx.lx.is_ident(i, "in") {
            continue;
        }
        // Require an enclosing `for` in the same statement.
        let mut back = i;
        let mut found_for = false;
        while back > 0 {
            back -= 1;
            match ctx.lx.kind(back) {
                Some(Tok::Ident(s)) if s == "for" => {
                    found_for = true;
                    break;
                }
                Some(Tok::Punct(';' | '{' | '}')) => break,
                _ => {}
            }
            if i - back > 40 {
                break;
            }
        }
        if !found_for {
            continue;
        }
        // Parse the iterated expression: optional `&`/`mut`, then a dotted
        // identifier path ending right before `{`.
        let mut j = i + 1;
        while ctx.lx.is_punct(j, '&') || ctx.lx.is_ident(j, "mut") {
            j += 1;
        }
        let mut last_ident: Option<&str> = None;
        while let Some(Tok::Ident(s)) = ctx.lx.kind(j) {
            last_ident = Some(s);
            j += 1;
            if !ctx.lx.is_punct(j, '.') || ctx.lx.is_punct(j + 1, '.') {
                break;
            }
            // A call (`x.iter()`) is pass 2a's job; only plain field paths
            // continue here.
            if ctx.lx.is_punct(j + 2, '(') {
                last_ident = None;
                break;
            }
            j += 1;
        }
        let (Some(recv), true) = (last_ident, ctx.lx.is_punct(j, '{')) else {
            continue;
        };
        if hash_vars.contains(recv) {
            ctx.emit(
                out,
                "QL01",
                ctx.lx.tokens[i].line,
                format!(
                    "`for … in` over unordered container `{recv}` — iteration order is \
                     layout-dependent; iterate a sorted view or reduce order-free"
                ),
            );
        }
    }
}

/// QL02 — ambient entropy / wall-clock in steering code.
///
/// Flags the identifiers `thread_rng` and `from_entropy` anywhere, and the
/// token sequences `Instant::now` / `SystemTime::now` (plus any other use
/// of `SystemTime`). RNG must flow from the named seed helpers in
/// `scope_ir::ids`; wall-clock belongs to the bench crate or to
/// explicitly-annotated telemetry.
pub fn ql02_ambient_entropy(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ident(ctx, i) else { continue };
        let line = ctx.lx.tokens[i].line;
        match name {
            "thread_rng" | "from_entropy" => ctx.emit(
                out,
                "QL02",
                line,
                format!(
                    "`{name}` draws ambient entropy — derive every seed from the named \
                     helpers in scope_ir::ids"
                ),
            ),
            "SystemTime" => ctx.emit(
                out,
                "QL02",
                line,
                "`SystemTime` reads the wall clock — steering code must be replayable \
                 without it"
                    .to_string(),
            ),
            "Instant"
                if ctx.lx.is_punct(i + 1, ':')
                    && ctx.lx.is_punct(i + 2, ':')
                    && ctx.lx.is_ident(i + 3, "now") =>
            {
                ctx.emit(
                    out,
                    "QL02",
                    line,
                    "`Instant::now` reads the wall clock — timing belongs to the bench \
                     crate or annotated telemetry"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Call names whose integer-literal arguments are seed salts by definition.
const SEED_CALLEES: &[&str] = &["mix64", "hash_value", "seed_from_u64"];

/// QL03 — raw seed-salt integer literals outside `scope_ir::ids`.
///
/// Flags an integer literal (hex with ≥ 2 digits, or decimal ≥ 256) when
/// it appears (a) anywhere inside a call to `mix64`/`hash_value`/
/// `seed_from_u64`, or (b) as the initializer of a binding or field whose
/// name contains `seed`/`salt`. Small decimal ordinals (stage numbers,
/// counts) pass; the point is derivation salts, which in this workspace
/// are invariably hex-spelled or named.
pub fn ql03_seed_salt(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let n = ctx.lx.tokens.len();
    // Callee stack: one entry per currently-open delimiter.
    let mut stack: Vec<Option<String>> = Vec::new();
    for i in 0..n {
        match ctx.lx.kind(i) {
            Some(Tok::Punct('(')) => {
                let callee = if i > 0 {
                    ident(ctx, i - 1).map(str::to_string)
                } else {
                    None
                };
                stack.push(callee);
            }
            Some(Tok::Punct('[' | '{')) => stack.push(None),
            Some(Tok::Punct(')' | ']' | '}')) => {
                stack.pop();
            }
            Some(Tok::Int(text)) => {
                if ctx.in_test[i] {
                    continue;
                }
                if !is_salt_magnitude(text) {
                    continue;
                }
                let line = ctx.lx.tokens[i].line;
                let in_seed_call = stack
                    .iter()
                    .flatten()
                    .any(|c| SEED_CALLEES.contains(&c.as_str()));
                if in_seed_call {
                    ctx.emit(
                        out,
                        "QL03",
                        line,
                        format!(
                            "raw salt `{text}` in a seed-derivation call — name it in \
                             scope_ir::ids so replay tooling shares one vocabulary"
                        ),
                    );
                    continue;
                }
                if seed_named_binding(ctx, i) {
                    ctx.emit(
                        out,
                        "QL03",
                        line,
                        format!(
                            "raw literal `{text}` initializes a seed/salt binding — name \
                             it in scope_ir::ids so replay tooling shares one vocabulary"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Hex with at least two digits, or decimal ≥ 256.
fn is_salt_magnitude(text: &str) -> bool {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        let digits = hex.chars().take_while(|c| c.is_ascii_hexdigit()).count();
        return digits >= 2;
    }
    let digits: String = clean.chars().take_while(char::is_ascii_digit).collect();
    digits.parse::<u128>().is_ok_and(|v| v >= 256)
}

/// Is the literal at `i` the value of a binding/field whose name contains
/// `seed` or `salt`? Covers `seed: 0x…` field inits and
/// `const X_SALT: u64 = 0x…` / `let my_seed = 0x…` within a few tokens.
fn seed_named_binding(ctx: &FileCtx, i: usize) -> bool {
    let named = |s: &str| {
        let l = s.to_ascii_lowercase();
        l.contains("seed") || l.contains("salt")
    };
    // Field init: Ident ':' literal.
    if i >= 2 && lone_colon(ctx, i - 1) {
        if let Some(name) = ident(ctx, i - 2) {
            return named(name);
        }
    }
    // Binding: scan back over `= <type tokens> :` up to a statement edge.
    let mut j = i;
    let mut saw_eq = false;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match ctx.lx.kind(j) {
            Some(Tok::Punct('=')) if lone_eq(ctx, j) => saw_eq = true,
            Some(Tok::Punct(';' | '{' | '}' | ',')) => return false,
            Some(Tok::Ident(s)) if saw_eq && named(s) => return true,
            _ => {}
        }
    }
    false
}

/// Derive traits QL04 bans on memo-carrying structs.
const BANNED_DERIVES: &[&str] = &["PartialEq", "Eq", "Hash", "Serialize", "Deserialize"];

/// QL04 — derived equality/serde on structs carrying an atomic fingerprint
/// memo.
///
/// A struct whose body has a field named `*memo*`/`*fingerprint*` of an
/// `Atomic*` type must hand-write `PartialEq`/`Hash`/serde so the memo
/// stays invisible (a derive would compare/serialize the memo and break
/// cached-vs-fresh equivalence). Flags any `#[derive(...)]` naming a
/// banned trait directly above such a struct.
pub fn ql04_derived_memo_eq(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let n = ctx.lx.tokens.len();
    let mut i = 0;
    while i < n {
        if !(ctx.lx.is_punct(i, '#')
            && ctx.lx.is_punct(i + 1, '[')
            && ctx.lx.is_ident(i + 2, "derive"))
        {
            i += 1;
            continue;
        }
        let derive_line = ctx.lx.tokens[i].line;
        // Collect derived trait names across this and any further derive
        // attributes, until the struct keyword.
        let mut derived: Vec<String> = Vec::new();
        let mut j = i;
        while j < n {
            if ctx.lx.is_punct(j, '#') && ctx.lx.is_punct(j + 1, '[') {
                let mut d = 0i32;
                while j < n {
                    match ctx.lx.kind(j) {
                        Some(Tok::Punct('[')) => d += 1,
                        Some(Tok::Punct(']')) => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        Some(Tok::Ident(s)) if BANNED_DERIVES.contains(&s.as_str()) => {
                            derived.push(s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
                continue;
            }
            match ctx.lx.kind(j) {
                Some(Tok::Ident(s)) if s == "struct" => break,
                Some(Tok::Ident(s)) if s == "pub" || s == "crate" || s == "in" => j += 1,
                Some(Tok::Punct('(' | ')')) => j += 1,
                _ => break,
            }
        }
        if !ctx.lx.is_ident(j, "struct") {
            i += 1;
            continue;
        }
        // Find the struct body `{ … }` (tuple/unit structs carry no named
        // memo fields).
        let mut k = j;
        while k < n && !ctx.lx.is_punct(k, '{') && !ctx.lx.is_punct(k, ';') {
            k += 1;
        }
        if ctx.lx.is_punct(k, '{') {
            let mut depth = 0i32;
            let mut m = k;
            let mut has_atomic = false;
            let mut memo_field: Option<String> = None;
            while m < n {
                match ctx.lx.kind(m) {
                    Some(Tok::Punct('{')) => depth += 1,
                    Some(Tok::Punct('}')) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(Tok::Ident(s)) => {
                        if s.starts_with("Atomic") {
                            has_atomic = true;
                        }
                        let l = s.to_ascii_lowercase();
                        if (l.contains("memo") || l.contains("fingerprint"))
                            && lone_colon(ctx, m + 1)
                        {
                            memo_field.get_or_insert_with(|| s.clone());
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            if has_atomic && !derived.is_empty() {
                if let Some(field) = memo_field {
                    if !ctx.in_test[i] {
                        ctx.emit(
                            out,
                            "QL04",
                            derive_line,
                            format!(
                                "derive({}) on a struct carrying atomic memo field `{field}` — \
                                 hand-write these impls so the memo stays invisible to \
                                 equality/hashing/serde",
                                derived.join(", ")
                            ),
                        );
                    }
                }
            }
            i = m + 1;
        } else {
            i = k + 1;
        }
    }
}

/// QL05 — `.unwrap()` / `.expect(` in the staged pipeline, `ProductionSim`,
/// and flighting paths (path scope lives in [`crate::rule_applies`]).
/// Typed errors only — extend `PipelineError`/`ViewBuildError` instead.
pub fn ql05_unwrap_expect(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ident(ctx, i) else { continue };
        if name != "unwrap" && name != "expect" {
            continue;
        }
        if i >= 1 && ctx.lx.is_punct(i - 1, '.') && ctx.lx.is_punct(i + 1, '(') {
            ctx.emit(
                out,
                "QL05",
                ctx.lx.tokens[i].line,
                format!(
                    "`.{name}(` in a steering path — return a typed error \
                     (PipelineError/ViewBuildError) instead of panicking"
                ),
            );
        }
    }
}

/// Accumulation methods QL06 flags inside rayon regions.
const ACCUM_METHODS: &[&str] = &["sum", "product", "reduce", "fold", "for_each"];

/// QL06 — accumulation inside rayon regions.
///
/// A *rayon region* is the call-chain statement containing a `par_*` or
/// `.install(` token: from that token until the chain's nesting depth
/// closes or a `;`/`,` at the starting depth. Within it, compound
/// assignments (`+=`, `-=`, `*=`, `/=`) and
/// `.sum()/.product()/.reduce()/.fold()/.for_each()` calls are flagged:
/// float accumulation order must not depend on thread interleaving, so
/// reduces go through the serial deterministic reduce helpers
/// (`core::stages` collects fan-out results in input order).
pub fn ql06_par_accumulate(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let n = ctx.lx.tokens.len();
    for i in 0..n {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ident(ctx, i) else { continue };
        let is_par =
            (name.starts_with("par_") || name == "into_par_iter") && ctx.lx.is_punct(i + 1, '(');
        let is_install = name == "install"
            && ctx.lx.is_punct(i + 1, '(')
            && i >= 1
            && ctx.lx.is_punct(i - 1, '.');
        if !is_par && !is_install {
            continue;
        }
        let d0 = ctx.depth[i];
        let mut j = i + 1;
        while j < n {
            if ctx.depth[j] < d0 {
                break;
            }
            if ctx.depth[j] == d0 && matches!(ctx.lx.kind(j), Some(Tok::Punct(';' | ','))) {
                break;
            }
            let line = ctx.lx.tokens[j].line;
            match ctx.lx.kind(j) {
                Some(Tok::Punct(c @ ('+' | '-' | '*' | '/')))
                    if ctx.lx.tokens[j].joint && ctx.lx.is_punct(j + 1, '=') =>
                {
                    ctx.emit(
                        out,
                        "QL06",
                        line,
                        format!(
                            "`{c}=` inside a rayon region — accumulate through the serial \
                             deterministic reduce helpers, not shared state"
                        ),
                    );
                }
                Some(Tok::Ident(m))
                    if ACCUM_METHODS.contains(&m.as_str())
                        && ctx.lx.is_punct(j - 1, '.')
                        && (ctx.lx.is_punct(j + 1, '(') || ctx.lx.is_punct(j + 1, ':')) =>
                {
                    let m = m.clone();
                    ctx.emit(
                        out,
                        "QL06",
                        line,
                        format!(
                            "`.{m}(` inside a rayon region — reduction order must not depend \
                             on thread interleaving; collect in input order and reduce \
                             serially"
                        ),
                    );
                }
                _ => {}
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    #[test]
    fn ql01_catches_map_iteration_and_respects_sorted_vecs() {
        let src = r#"
use rustc_hash::FxHashMap;
struct S { cache: FxHashMap<u64, u64> }
fn f(s: &S, v: &Vec<u64>) {
    for x in v { drop(x); }              // Vec: fine
    for (k, c) in &s.cache { drop(k); }  // map: flagged
    let total: u64 = s.cache.values().sum(); // flagged
}
"#;
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "QL01"));
    }

    #[test]
    fn ql02_instant_now_but_not_instant_type() {
        let src = "fn f(t: std::time::Instant) -> u64 { t.elapsed().as_nanos() as u64 }\n\
                   fn g() { let _t = std::time::Instant::now(); }\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn ql03_literal_magnitudes() {
        use super::is_salt_magnitude;
        assert!(is_salt_magnitude("0x7821"));
        assert!(is_salt_magnitude("0xAA"));
        assert!(is_salt_magnitude("0x9806_0d0d"));
        assert!(is_salt_magnitude("1000"));
        assert!(is_salt_magnitude("256u64"));
        assert!(!is_salt_magnitude("0x7"));
        assert!(!is_salt_magnitude("2"));
        assert!(!is_salt_magnitude("255"));
    }

    #[test]
    fn ql06_pure_par_map_collect_is_clean() {
        let src = "fn f(items: &[u64]) -> Vec<u64> {\n\
                   items.par_iter().map(|x| x + 1).collect()\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }
}

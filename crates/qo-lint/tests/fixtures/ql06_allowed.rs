// QL06 allowlisted negative: fan out in parallel, collect in input order,
// reduce serially — plus one justified order-free side effect.
use rayon::prelude::*;

pub fn total(xs: &[f64]) -> f64 {
    let parts: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    parts.iter().sum() // serial reduce, input order
}

pub fn touch(xs: &[u64], hits: &std::sync::atomic::AtomicU64) {
    xs.par_iter()
        // qo-lint: allow(par-accumulate) — integer counter, order-free
        .for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
}

// QL01 allowlisted negative: the same iteration patterns, justified — the
// results are totally ordered before anything observable happens.
use rustc_hash::FxHashMap;

pub fn sorted_keys(by_template: &FxHashMap<u64, f64>) -> Vec<u64> {
    // qo-lint: allow(unordered-iter) — collected then sorted immediately below
    let mut keys: Vec<u64> = by_template.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn count(pending: &FxHashMap<u64, u64>) -> usize {
    pending.iter().count() // qo-lint: allow(unordered-iter) — order-free reduction
}

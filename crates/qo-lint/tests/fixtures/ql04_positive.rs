// QL04 positive: derived equality on a struct carrying an atomic
// fingerprint memo (the derive would compare the memo and break
// cached-vs-fresh equivalence).
use std::sync::atomic::AtomicU64;

#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub nodes: Vec<u64>,
    fp_memo: AtomicU64,
}

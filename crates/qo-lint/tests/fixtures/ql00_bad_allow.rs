// QL00 positive: malformed allow annotations are themselves diagnostics.
// qo-lint: allow(no-such-rule) — the key below does not exist
pub fn f() {}

pub fn g() {} // qo-lint: allow(unordered-iter)

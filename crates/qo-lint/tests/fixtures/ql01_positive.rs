// QL01 positive: unordered hash-container iteration in output-affecting
// code, no allow annotation.
use rustc_hash::FxHashMap;

pub fn totals(by_template: &FxHashMap<u64, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for (_k, v) in by_template.iter() {
        out.push(*v);
    }
    out
}

pub fn sum_pending(pending: FxHashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (_k, v) in &pending {
        acc += v;
    }
    acc
}

// QL03 allowlisted negative: named constants from the shared vocabulary,
// plus one justified top-level demo seed.
use scope_ir::ids::{mix64, RANDOM_FLIP_SALT};

pub fn derive(job: u64, day: u64) -> u64 {
    mix64(job, day ^ RANDOM_FLIP_SALT)
}

pub fn demo_seed() -> u64 {
    // qo-lint: allow(seed-salt) — top-level demo seed, not a derivation salt
    let seed = 31_337;
    seed
}

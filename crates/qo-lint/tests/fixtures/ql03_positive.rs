// QL03 positive: raw salts in seed-derivation calls and seed-named
// bindings initialized from magic literals.
use scope_ir::ids::mix64;

pub fn derive(job: u64, day: u64) -> u64 {
    mix64(job, day ^ 0xBEEF)
}

pub fn default_seed() -> u64 {
    let run_salt = 0x5eed;
    run_salt
}

// QL02 allowlisted negative: telemetry that is justified and excluded from
// byte-identity comparisons.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    // qo-lint: allow(ambient-entropy) — wall-clock telemetry only, zeroed in comparisons
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos() as u64)
}

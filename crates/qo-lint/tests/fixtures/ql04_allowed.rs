// QL04 allowlisted negative: the memo-carrying struct either hand-writes
// its comparisons or justifies the derive.
use std::sync::atomic::AtomicU64;

pub struct Plan {
    pub nodes: Vec<u64>,
    fp_memo: AtomicU64,
}

impl PartialEq for Plan {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes // memo deliberately invisible
    }
}

// qo-lint: allow(derived-memo-eq) — serde skips the memo via #[serde(skip)]
#[derive(Debug, serde::Serialize)]
pub struct Snapshot {
    pub version: u32,
    fingerprint_memo: AtomicU64,
}

// QL05 positive: unwrap/expect on the steering path (linted under a
// flighting virtual path). Test code may unwrap freely.
pub fn run(x: Option<u64>) -> u64 {
    let v = x.unwrap();
    let w = x.expect("present");
    v + w
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}

// QL05 allowlisted negative: an expect whose invariant is a documented API
// contract, justified in place.
pub fn one(results: Vec<Result<u64, String>>) -> Result<u64, String> {
    // qo-lint: allow(unwrap-expect) — slate API contract: exactly one result per treatment
    results.into_iter().next().expect("one result per treatment")
}

// QL02 positive: ambient entropy / wall-clock reads outside timing modules.
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn draw() -> u32 {
    let mut rng = rand::thread_rng();
    rng.next_u32()
}

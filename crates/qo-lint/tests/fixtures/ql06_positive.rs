// QL06 positive: float accumulation inside rayon regions — reduction order
// would depend on thread interleaving.
use rayon::prelude::*;

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().sum()
}

pub fn accumulate(xs: &[f64], shared: &std::sync::Mutex<f64>) {
    xs.par_iter().for_each(|x| {
        *shared.lock() += x;
    });
}

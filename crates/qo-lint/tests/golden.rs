//! Golden-file tests: each fixture under `tests/fixtures/` is linted under
//! a virtual workspace path and its rendered diagnostics compared with the
//! `.expected` snapshot next to it. Regenerate snapshots with
//! `QO_LINT_BLESS=1 cargo test -p qo-lint --test golden`.
//!
//! The workspace walk skips directories named `fixtures`
//! ([`qo_lint::collect_files`]), so the deliberately lint-positive files
//! here never fail the self-check below.

use std::fs;
use std::path::{Path, PathBuf};

/// (fixture stem, virtual path the fixture pretends to live at). The
/// virtual path decides which rules apply — QL05 only fires on the staged
/// pipeline files and the flighting crate, so its fixtures borrow a
/// flighting path.
const CASES: &[(&str, &str)] = &[
    ("ql00_bad_allow", "crates/core/src/fixture.rs"),
    ("ql01_positive", "crates/core/src/fixture.rs"),
    ("ql01_allowed", "crates/core/src/fixture.rs"),
    ("ql02_positive", "crates/core/src/fixture.rs"),
    ("ql02_allowed", "crates/core/src/fixture.rs"),
    ("ql03_positive", "crates/core/src/fixture.rs"),
    ("ql03_allowed", "crates/core/src/fixture.rs"),
    ("ql04_positive", "crates/scope-ir/src/fixture.rs"),
    ("ql04_allowed", "crates/scope-ir/src/fixture.rs"),
    ("ql05_positive", "crates/flighting/src/fixture.rs"),
    ("ql05_allowed", "crates/flighting/src/fixture.rs"),
    ("ql06_positive", "crates/core/src/fixture.rs"),
    ("ql06_allowed", "crates/core/src/fixture.rs"),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixtures_match_their_golden_diagnostics() {
    let dir = fixture_dir();
    let bless = std::env::var_os("QO_LINT_BLESS").is_some();
    for (name, vpath) in CASES {
        let src = fs::read_to_string(dir.join(format!("{name}.rs")))
            .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        let got: String = qo_lint::lint_source(vpath, &src)
            .iter()
            .map(|d| d.render() + "\n")
            .collect();
        let expected_path = dir.join(format!("{name}.expected"));
        if bless {
            fs::write(&expected_path, &got).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("snapshot {name}.expected: {e}"));
        assert_eq!(got, expected, "fixture {name} diverged from its snapshot");
    }
}

#[test]
fn positive_fixtures_fire_their_rule_and_allowed_fixtures_are_clean() {
    // Independent of the snapshots: every `*_positive` fixture must produce
    // at least one diagnostic of its own rule, every `*_allowed` fixture
    // none at all (the point of the annotation syntax).
    let dir = fixture_dir();
    for (name, vpath) in CASES {
        let src = fs::read_to_string(dir.join(format!("{name}.rs"))).unwrap();
        let diags = qo_lint::lint_source(vpath, &src);
        let rule = name[..4].to_ascii_uppercase();
        if name.ends_with("_allowed") {
            assert!(
                diags.is_empty(),
                "{name}: allowlisted fixture produced {diags:?}"
            );
        } else {
            assert!(
                diags.iter().any(|d| d.rule == rule),
                "{name}: no {rule} diagnostic in {diags:?}"
            );
        }
    }
}

#[test]
fn json_report_is_stable_for_a_fixture() {
    let dir = fixture_dir();
    let src = fs::read_to_string(dir.join("ql03_positive.rs")).unwrap();
    let diags = qo_lint::lint_source("crates/core/src/fixture.rs", &src);
    let json = qo_lint::render_json(&diags);
    assert!(
        json.starts_with("{\n  \"tool\": \"qo-lint\""),
        "json must identify the tool: {json}"
    );
    assert!(
        json.contains("\"rule\": \"QL03\""),
        "json must carry the rule id: {json}"
    );
    assert_eq!(
        json.matches("\"file\":").count(),
        diags.len(),
        "one finding object per diagnostic: {json}"
    );
}

#[test]
fn workspace_is_clean_under_deny() {
    // The self-check the CI gate relies on: the workspace itself must stay
    // free of findings (fix real ones, annotate intentional ones).
    let root = qo_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("fixture tests run inside the workspace");
    let diags = qo_lint::lint_workspace(&root);
    let rendered: Vec<String> = diags.iter().map(qo_lint::Diagnostic::render).collect();
    assert!(
        diags.is_empty(),
        "workspace has qo-lint findings:\n{}",
        rendered.join("\n")
    );
}

//! Property-based tests for plan IR invariants: any plan built bottom-up by
//! the random builder must validate, expose child-first topological order,
//! and keep template identity invariant to literal values and cardinalities.

use proptest::prelude::*;
use scope_ir::expr::{AggExpr, AggFunc, BinOp, ScalarExpr};
use scope_ir::logical::{JoinKind, LogicalOp, LogicalPlan, SortKey, TableRef};
use scope_ir::schema::{Column, DataType, Schema};
use scope_ir::stats::DualStats;
use scope_ir::NodeId;

/// A recipe for building a random (but always well-formed) plan.
#[derive(Debug, Clone)]
enum Step {
    Scan { rows: f64 },
    Filter { lit: i64, sel: f64 },
    Project,
    Join { sel: f64 },
    Aggregate { ratio: f64 },
    Top { k: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1.0f64..1e7).prop_map(|rows| Step::Scan { rows }),
        ((-1000i64..1000), (0.001f64..1.0)).prop_map(|(lit, sel)| Step::Filter { lit, sel }),
        Just(Step::Project),
        (1e-6f64..0.01).prop_map(|sel| Step::Join { sel }),
        (0.0001f64..0.5).prop_map(|ratio| Step::Aggregate { ratio }),
        (1u64..1000).prop_map(|k| Step::Top { k }),
    ]
}

fn base_schema() -> Schema {
    Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("c", DataType::String { avg_len: 24 }),
    ])
}

/// Build a plan by folding steps over a stack of sub-plans, then wiring all
/// remaining stack entries to outputs. Mirrors how the workload generator
/// composes scripts, so properties proven here transfer.
fn build(steps: &[Step]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut scans = 0u32;
    for step in steps {
        match step {
            Step::Scan { rows } => {
                scans += 1;
                let t = TableRef::new(
                    format!("t{scans}"),
                    base_schema(),
                    DualStats::new(*rows, rows * 1.3),
                );
                stack.push(plan.add(LogicalOp::Extract { table: t }, vec![]));
            }
            Step::Filter { lit, sel } => {
                if let Some(child) = stack.pop() {
                    let pred = ScalarExpr::binary(
                        BinOp::Gt,
                        ScalarExpr::col(0),
                        ScalarExpr::lit_int(*lit),
                    );
                    let node = plan.add(
                        LogicalOp::Filter {
                            predicate: pred,
                            selectivity: DualStats::new(*sel, (sel * 1.4).min(1.0)),
                        },
                        vec![child],
                    );
                    stack.push(node);
                }
            }
            Step::Project => {
                if let Some(child) = stack.pop() {
                    let node = plan.add(
                        LogicalOp::Project {
                            exprs: vec![
                                (ScalarExpr::col(0), "a".to_string()),
                                (ScalarExpr::col(1), "b".to_string()),
                            ],
                        },
                        vec![child],
                    );
                    stack.push(node);
                }
            }
            Step::Join { sel } => {
                if stack.len() >= 2 {
                    let r = stack.pop().unwrap();
                    let l = stack.pop().unwrap();
                    let node = plan.add(
                        LogicalOp::Join {
                            kind: JoinKind::Inner,
                            on: vec![(0, 0)],
                            selectivity: DualStats::exact(*sel),
                        },
                        vec![l, r],
                    );
                    stack.push(node);
                }
            }
            Step::Aggregate { ratio } => {
                if let Some(child) = stack.pop() {
                    let node = plan.add(
                        LogicalOp::Aggregate {
                            group_by: vec![0],
                            aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                            group_ratio: DualStats::exact(*ratio),
                        },
                        vec![child],
                    );
                    stack.push(node);
                }
            }
            Step::Top { k } => {
                if let Some(child) = stack.pop() {
                    let node = plan.add(
                        LogicalOp::Top {
                            k: *k,
                            keys: vec![SortKey::asc(0)],
                        },
                        vec![child],
                    );
                    stack.push(node);
                }
            }
        }
    }
    if stack.is_empty() {
        let t = TableRef::new("fallback", base_schema(), DualStats::exact(10.0));
        stack.push(plan.add(LogicalOp::Extract { table: t }, vec![]));
    }
    for (i, node) in stack.into_iter().enumerate() {
        plan.add_output(format!("out{i}"), node);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_plans_validate(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let plan = build(&steps);
        prop_assert!(plan.validate().is_ok(), "{:?}", plan.validate());
    }

    #[test]
    fn topo_order_is_child_first(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let plan = build(&steps);
        let order = plan.topo_order();
        let mut seen = vec![false; plan.len()];
        for id in &order {
            for c in &plan.node(*id).children {
                prop_assert!(seen[c.index()], "child {c} after parent {id}");
            }
            seen[id.index()] = true;
        }
    }

    #[test]
    fn schemas_cover_every_node(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let plan = build(&steps);
        prop_assert_eq!(plan.schemas().len(), plan.len());
        // Every reachable node has a non-empty schema except none (all ops
        // here produce at least one column).
        for id in plan.topo_order() {
            prop_assert!(!plan.schemas()[id.index()].is_empty());
        }
    }

    #[test]
    fn template_id_ignores_literals(
        steps in prop::collection::vec(step_strategy(), 1..30),
        delta in 1i64..500,
    ) {
        let plan_a = build(&steps);
        let shifted: Vec<Step> = steps
            .iter()
            .map(|s| match s {
                Step::Filter { lit, sel } => Step::Filter { lit: lit + delta, sel: *sel },
                other => other.clone(),
            })
            .collect();
        let plan_b = build(&shifted);
        prop_assert_eq!(plan_a.template_id(), plan_b.template_id());
    }

    #[test]
    fn serde_roundtrip_preserves_plan(steps in prop::collection::vec(step_strategy(), 1..20)) {
        let plan = build(&steps);
        let json = serde_json::to_string(&plan).unwrap();
        let back: LogicalPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(plan, back);
    }
}

//! Strongly-typed identifiers and the seed-derivation vocabulary shared
//! across the workspace.
//!
//! Every stochastic draw in the simulation is derived from stable hashes via
//! [`mix64`], so runs are reproducible bit-for-bit. The *named* seed helpers
//! below ([`production_run_seed`], [`aa_run_seed`], the flighting seeds, and
//! the executor's internal stream seeds) centralize the per-purpose salts
//! that used to be magic constants scattered over the call sites — the
//! execution-result cache keys on the very same `(job_seed, run_seed)`
//! values these helpers produce, so cache and call sites must share one
//! vocabulary.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node inside a plan arena ([`crate::LogicalPlan`] /
/// [`crate::PhysicalPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one submitted job (one execution of a script).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{:08x}", self.0)
    }
}

/// Identifier of a recurring job template. More than 60% of SCOPE jobs are
/// recurring: periodically arriving template-scripts with different input
/// cardinalities and filter predicates but the same set of operators.
/// QO-Advisor keys every hint on the template id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(pub u64);

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tpl-{:08x}", self.0)
    }
}

/// Stable 64-bit FNV-1a hash used to derive deterministic per-entity RNG
/// seeds and template identities. Not a general-purpose hasher: it exists so
/// that ids are reproducible across runs and platforms (unlike `DefaultHasher`
/// whose algorithm is unspecified).
#[must_use]
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Combine two 64-bit values into one (splitmix-style finalizer). Used to
/// derive independent sub-seeds, e.g. `seed(job) ⊕ seed(run_index)`.
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically fold a serialized [`serde::Value`] tree into a 64-bit
/// hash (leaf kind tags keep e.g. `0u64` and `false` distinct). This is the
/// basis of every exact "fingerprint" in the workspace: logical plans (the
/// compile-cache key), physical plans and cluster configurations (the
/// execution-cache key).
#[must_use]
pub fn hash_value(value: &serde::Value, h: u64) -> u64 {
    match value {
        serde::Value::Null => mix64(h, 0xA0),
        serde::Value::Bool(b) => mix64(h, 0xB0 | u64::from(*b)),
        serde::Value::U64(v) => mix64(mix64(h, 0xC0), *v),
        serde::Value::I64(v) => mix64(mix64(h, 0xC1), *v as u64),
        serde::Value::F64(v) => mix64(mix64(h, 0xC2), v.to_bits()),
        serde::Value::Str(s) => mix64(mix64(h, 0xD0), stable_hash64(s.as_bytes())),
        serde::Value::Array(items) => {
            let mut h = mix64(mix64(h, 0xE0), items.len() as u64);
            for item in items {
                h = hash_value(item, h);
            }
            h
        }
        serde::Value::Object(fields) => {
            let mut h = mix64(mix64(h, 0xF0), fields.len() as u64);
            for (key, value) in fields {
                h = hash_value(value, mix64(h, stable_hash64(key.as_bytes())));
            }
            h
        }
    }
}

// ---------------------------------------------------------------------
// Named salt vocabulary (qo-lint rule QL03).
//
// Every raw salt below used to be a magic literal at its call site; the
// values are unchanged (see `named_salts_match_their_legacy_spellings`),
// so fingerprints, cache keys, and replayed runs stay byte-identical.
// New derivation salts belong here, not at call sites — `qo-lint --deny`
// enforces that.
// ---------------------------------------------------------------------

/// Salt of the contextual bandit's *training-pass* rank draw (the
/// logged-propensity stream; `qo_advisor::stages`).
pub const CB_TRAIN_RANK_SALT: u64 = 0x7821;
/// Salt of the contextual bandit's *acting-pass* rank draw.
pub const CB_ACT_RANK_SALT: u64 = 0xAC7;
/// Salt of the uniform-random baseline's span pick (Table 3 ablation).
pub const UNIFORM_PICK_SALT: u64 = 0x9A9;
/// Salt of `qo_advisor::baselines::random_flip`'s uniform rule draw.
pub const RANDOM_FLIP_SALT: u64 = 0xBA5E;
/// Tag OR-ed onto the sample ordinal in the exhaustive-search baseline.
pub const EXHAUSTIVE_SAMPLE_SALT: u64 = 0x4E91_0000;
/// Initial value of the slate-input content-fingerprint fold
/// (`qo_advisor::features`, the slate-cache key).
pub const SLATE_FP_SEED: u64 = 0x51A7E;
/// Boundary sentinel between actions inside the slate fingerprint fold.
pub const SLATE_ACTION_SENTINEL: u64 = 0xAC710;

/// Salt of [`crate::LogicalPlan::fingerprint`] (the compile-cache key).
pub const LOGICAL_FP_SALT: u64 = 0x05ca_1ab1_e0dd_ba11;
/// Salt of [`crate::PhysicalPlan::fingerprint`] (the execution-cache key).
pub const PHYSICAL_FP_SALT: u64 = 0x0e8e_c0de_5ca1_ab1e;
/// Salt of the cluster *hardware* config epoch (stage-graph memo sharing).
pub const CLUSTER_CONFIG_EPOCH_SALT: u64 = 0xc105_7e40_0000_0001;
/// Salt of the cluster *variance-model* half of the execution epoch.
pub const CLUSTER_VARIANCE_EPOCH_SALT: u64 = 0x0e8e_0000_0000_0002;

/// Salt of the per-(template, config) experimental-rule instability draw
/// (`scope_opt::registry`).
pub const RULE_INSTABILITY_SALT: u64 = 0xDEAD_0000;
/// XOR flip separating the two uniform draws behind one tuning-noise
/// sample.
pub const TUNING_NOISE_AXIS_FLIP: u64 = 0xFF;
/// Salt of the fallback-path recompile-failure draw.
pub const FALLBACK_UNSTABLE_SALT: u64 = 0xFBFB_0001;
/// Salt of the disable-default-rule recompile-failure draw.
pub const DISABLE_UNSTABLE_SALT: u64 = 0x0FF0_0000;
/// Salt of the realized intermediate-compression IO ratio draw.
pub const COMPRESSION_IO_SALT: u64 = 0xC0DE_0000;

/// Default top-level seed of the synthetic workload
/// (`scope_workload::WorkloadConfig`).
pub const DEFAULT_WORKLOAD_SEED: u64 = 0x5c09e;
/// Tag OR-ed onto the template ordinal when deriving recurring-template
/// seeds from the workload seed.
pub const TEMPLATE_INDEX_SALT: u64 = 0x1000_0000;
/// Salt separating a template's *schedule* draws (period/phase) from its
/// structure draws.
pub const TEMPLATE_SCHEDULE_SALT: u64 = 0x5c4ed;
/// Salt deriving a [`JobId`] from a job seed.
pub const JOB_ID_SALT: u64 = 0x10b;
/// Tag OR-ed onto the ad-hoc ordinal when deriving one-off job seeds.
pub const ADHOC_TEMPLATE_SALT: u64 = 0xAD_0000;
/// Salt separating template-structure draws from instance-literal draws.
pub const TEMPLATE_STRUCTURE_SALT: u64 = 0x7e4a_91b5_02fd_11aa;
/// Salt of the Mixed-literal-policy stickiness draw.
pub const STICKY_LITERAL_SALT: u64 = 0x51_1C4B_F00D;
/// Salt of the day-over-day cardinality-drift stream.
pub const CARDINALITY_DRIFT_SALT: u64 = 0xD81F_7000;
/// Salt of the second uniform draw inside one drift sample.
pub const DRIFT_SECOND_DRAW_SALT: u64 = 0x77;
/// Salt deriving a tenant's private workload seed from a fleet base seed
/// (see [`tenant_workload_seed`]).
pub const TENANT_WORKLOAD_SALT: u64 = 0x7E4A_0017;

/// Salt of the shared daily production run seed (one cluster-noise draw per
/// simulated day, shared by the production view build and the counterfactual
/// default runs so both arms see identical conditions).
const PRODUCTION_RUN_SALT: u64 = 0x9806_0d0d;
/// Salt of the A/A re-run stream (`flighting::run_aa`).
const AA_RUN_SALT: u64 = 0xAA;
/// Per-arm salts of a flighting batch's baseline/treatment runs.
const FLIGHT_BASELINE_SALT: u64 = 0xA;
const FLIGHT_TREATMENT_SALT: u64 = 0xB;
/// Salt of the deterministic preflight failure/filter draw.
const PREFLIGHT_SALT: u64 = 0xF11;
/// Salt folding `(job_seed, run_seed)` into the executor's base RNG seed.
const EXEC_BASE_SALT: u64 = 0x5eed_cafe;
/// Tag OR-ed onto the stage ordinal for per-stage noise streams.
const EXEC_STAGE_SALT: u64 = 0x57A6_0000;

/// The run seed of production day `day`: every production execution of that
/// day (view build and counterfactual default runs alike) shares it, so
/// default-vs-steered deltas isolate the plan effect.
#[must_use]
pub fn production_run_seed(day: u32) -> u64 {
    mix64(u64::from(day), PRODUCTION_RUN_SALT)
}

/// The run seed of the `run_index`-th A/A re-execution of a job.
#[must_use]
pub fn aa_run_seed(run_index: u64) -> u64 {
    mix64(AA_RUN_SALT, run_index)
}

/// Run seed of a flighting batch's *baseline* arm.
#[must_use]
pub fn flight_baseline_run_seed(job_seed: u64, batch_salt: u64) -> u64 {
    mix64(job_seed, mix64(batch_salt, FLIGHT_BASELINE_SALT))
}

/// Run seed of a flighting batch's *treatment* arm.
#[must_use]
pub fn flight_treatment_run_seed(job_seed: u64, batch_salt: u64) -> u64 {
    mix64(job_seed, mix64(batch_salt, FLIGHT_TREATMENT_SALT))
}

/// Deterministic per-(job, batch) draw behind flighting's preflight
/// failure/filter taxonomy.
#[must_use]
pub fn preflight_draw(job_seed: u64, batch_salt: u64) -> u64 {
    mix64(job_seed, mix64(batch_salt, PREFLIGHT_SALT))
}

/// The executor's whole-run base RNG seed for `(job_seed, run_seed)`. Two
/// executions with equal base seeds (and equal plans/clusters) are
/// bit-identical — which is exactly what makes execution results cacheable.
#[must_use]
pub fn exec_base_seed(job_seed: u64, run_seed: u64) -> u64 {
    mix64(job_seed, mix64(run_seed, EXEC_BASE_SALT))
}

/// The per-stage noise-stream seed: aligned stages of two plans executed
/// under one run seed share noise (common random numbers).
#[must_use]
pub fn exec_stage_seed(base_seed: u64, stage_ordinal: u64) -> u64 {
    mix64(base_seed, stage_ordinal | EXEC_STAGE_SALT)
}

/// The workload seed of fleet tenant `tenant` derived from a fleet-wide
/// `base_seed`: a disjoint seed stream per tenant, so a fleet of
/// *non*-overlapping tenants draws unrelated templates, schedules, and
/// literals (overlapping fleets simply reuse `base_seed` verbatim instead).
#[must_use]
pub fn tenant_workload_seed(base_seed: u64, tenant: u32) -> u64 {
    mix64(base_seed, u64::from(tenant) ^ TENANT_WORKLOAD_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_deterministic() {
        assert_eq!(stable_hash64(b"hello"), stable_hash64(b"hello"));
        assert_ne!(stable_hash64(b"hello"), stable_hash64(b"hellp"));
    }

    #[test]
    fn stable_hash_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn mix64_differs_by_argument() {
        assert_ne!(mix64(1, 2), mix64(1, 3));
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_eq!(mix64(7, 9), mix64(7, 9));
    }

    #[test]
    fn seed_helpers_match_their_legacy_spellings() {
        // The helpers must reproduce the exact values of the magic-constant
        // call sites they replaced, or cached runs would diverge from the
        // pre-refactor outputs.
        assert_eq!(production_run_seed(7), mix64(7, 0x9806_0d0d));
        assert_eq!(aa_run_seed(3), mix64(0xAA, 3));
        assert_eq!(flight_baseline_run_seed(11, 2), mix64(11, mix64(2, 0xA)));
        assert_eq!(flight_treatment_run_seed(11, 2), mix64(11, mix64(2, 0xB)));
        assert_eq!(preflight_draw(11, 2), mix64(11, mix64(2, 0xF11)));
        assert_eq!(exec_base_seed(5, 9), mix64(5, mix64(9, 0x5eed_cafe)));
        assert_eq!(exec_stage_seed(42, 3), mix64(42, 3 | 0x57A6_0000));
        // Arms of one flight are distinct streams.
        assert_ne!(
            flight_baseline_run_seed(11, 2),
            flight_treatment_run_seed(11, 2)
        );
    }

    #[test]
    fn named_salts_match_their_legacy_spellings() {
        // Each named salt must keep the exact value of the magic literal it
        // replaced at its call site, or every fingerprint, cache key, and
        // replayed run would diverge from pre-refactor outputs.
        assert_eq!(CB_TRAIN_RANK_SALT, 0x7821);
        assert_eq!(CB_ACT_RANK_SALT, 0xAC7);
        assert_eq!(UNIFORM_PICK_SALT, 0x9A9);
        assert_eq!(RANDOM_FLIP_SALT, 0xBA5E);
        assert_eq!(EXHAUSTIVE_SAMPLE_SALT, 0x4E91_0000);
        assert_eq!(SLATE_FP_SEED, 0x51A7E);
        assert_eq!(SLATE_ACTION_SENTINEL, 0xAC710);
        assert_eq!(LOGICAL_FP_SALT, 0x05ca_1ab1_e0dd_ba11);
        assert_eq!(PHYSICAL_FP_SALT, 0x0e8e_c0de_5ca1_ab1e);
        assert_eq!(CLUSTER_CONFIG_EPOCH_SALT, 0xc105_7e40_0000_0001);
        assert_eq!(CLUSTER_VARIANCE_EPOCH_SALT, 0x0e8e_0000_0000_0002);
        assert_eq!(RULE_INSTABILITY_SALT, 0xDEAD_0000);
        assert_eq!(TUNING_NOISE_AXIS_FLIP, 0xFF);
        assert_eq!(FALLBACK_UNSTABLE_SALT, 0xFBFB_0001);
        assert_eq!(DISABLE_UNSTABLE_SALT, 0x0FF0_0000);
        assert_eq!(COMPRESSION_IO_SALT, 0xC0DE_0000);
        assert_eq!(DEFAULT_WORKLOAD_SEED, 0x5c09e);
        assert_eq!(TEMPLATE_INDEX_SALT, 0x1000_0000);
        assert_eq!(TEMPLATE_SCHEDULE_SALT, 0x5c4ed);
        assert_eq!(JOB_ID_SALT, 0x10b);
        assert_eq!(ADHOC_TEMPLATE_SALT, 0xAD_0000);
        assert_eq!(TEMPLATE_STRUCTURE_SALT, 0x7e4a_91b5_02fd_11aa);
        assert_eq!(STICKY_LITERAL_SALT, 0x51_1C4B_F00D);
        assert_eq!(CARDINALITY_DRIFT_SALT, 0xD81F_7000);
        assert_eq!(DRIFT_SECOND_DRAW_SALT, 0x77);
        assert_eq!(TENANT_WORKLOAD_SALT, 0x7E4A_0017);
    }

    #[test]
    fn tenant_workload_seeds_are_disjoint_and_stable() {
        let base = DEFAULT_WORKLOAD_SEED;
        let seeds: Vec<u64> = (0..64).map(|t| tenant_workload_seed(base, t)).collect();
        for (i, a) in seeds.iter().enumerate() {
            assert_ne!(*a, base, "tenant {i} must not alias the base seed");
            for (j, b) in seeds.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "tenants {i} and {j} must draw disjoint streams");
            }
        }
        assert_eq!(tenant_workload_seed(base, 7), tenant_workload_seed(base, 7));
    }

    #[test]
    fn hash_value_distinguishes_kinds_and_contents() {
        use serde::Value;
        let h = |v: &Value| hash_value(v, 0);
        assert_ne!(h(&Value::U64(0)), h(&Value::Bool(false)));
        assert_ne!(h(&Value::U64(1)), h(&Value::I64(1)));
        assert_eq!(h(&Value::Str("a".into())), h(&Value::Str("a".into())));
        assert_ne!(h(&Value::Str("a".into())), h(&Value::Str("b".into())));
        assert_ne!(
            h(&Value::Array(vec![Value::U64(1), Value::U64(2)])),
            h(&Value::Array(vec![Value::U64(2), Value::U64(1)]))
        );
    }

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
        assert_eq!(JobId(0xff).to_string(), "job-000000ff");
        assert_eq!(TemplateId(0xab).to_string(), "tpl-000000ab");
    }
}

//! Strongly-typed identifiers shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node inside a plan arena ([`crate::LogicalPlan`] /
/// [`crate::PhysicalPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one submitted job (one execution of a script).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{:08x}", self.0)
    }
}

/// Identifier of a recurring job template. More than 60% of SCOPE jobs are
/// recurring: periodically arriving template-scripts with different input
/// cardinalities and filter predicates but the same set of operators.
/// QO-Advisor keys every hint on the template id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(pub u64);

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tpl-{:08x}", self.0)
    }
}

/// Stable 64-bit FNV-1a hash used to derive deterministic per-entity RNG
/// seeds and template identities. Not a general-purpose hasher: it exists so
/// that ids are reproducible across runs and platforms (unlike `DefaultHasher`
/// whose algorithm is unspecified).
#[must_use]
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Combine two 64-bit values into one (splitmix-style finalizer). Used to
/// derive independent sub-seeds, e.g. `seed(job) ⊕ seed(run_index)`.
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_deterministic() {
        assert_eq!(stable_hash64(b"hello"), stable_hash64(b"hello"));
        assert_ne!(stable_hash64(b"hello"), stable_hash64(b"hellp"));
    }

    #[test]
    fn stable_hash_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn mix64_differs_by_argument() {
        assert_ne!(mix64(1, 2), mix64(1, 3));
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_eq!(mix64(7, 9), mix64(7, 9));
    }

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
        assert_eq!(JobId(0xff).to_string(), "job-000000ff");
        assert_eq!(TemplateId(0xab).to_string(), "tpl-000000ab");
    }
}

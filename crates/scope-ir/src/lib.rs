//! Plan intermediate representation for the SCOPE-like engine.
//!
//! SCOPE scripts compile into *DAGs* of operators (not single trees): a job
//! contains one or more SQL-like statements stitched together, with one
//! [`LogicalOp::Output`] root per resulting dataset and possibly shared
//! sub-plans. This crate defines:
//!
//! * [`schema`] — columns, data types, and row schemas;
//! * [`expr`] — scalar expressions with selectivity heuristics;
//! * [`stats`] — *dual* statistics (ground-truth and catalog-estimated) that
//!   let the optimizer mis-estimate while the runtime simulator stays honest;
//! * [`logical`] — the logical operator algebra and arena-based plan DAG;
//! * [`physical`] — physical operators (implementation flavors, exchanges,
//!   partitioning schemes) and the physical plan DAG;
//! * [`sharded`] — the generic lock-sharded FIFO cache every result cache in
//!   the workspace builds on, next to the [`counters`] vocabulary they all
//!   report in.
//!
//! The crate is dependency-light by design: every other crate in the
//! workspace (optimizer, runtime simulator, workload generator, pipeline)
//! builds on these types.

pub mod counters;
pub mod display;
pub mod expr;
pub mod ids;
pub mod logical;
pub mod physical;
pub mod schema;
pub mod sharded;
pub mod stats;

pub use counters::{CacheStats, LatencyHistogram};
pub use expr::{AggExpr, AggFunc, BinOp, ScalarExpr, Value};
pub use ids::{JobId, NodeId, TemplateId};
pub use logical::{JoinKind, LogicalNode, LogicalOp, LogicalPlan, SortKey, TableRef};
pub use physical::{
    AggMode, Partitioning, PhysicalNode, PhysicalOp, PhysicalPlan, PhysicalTuning, ScanVariant,
};
pub use schema::{Column, DataType, Schema};
pub use sharded::ShardedCache;
pub use stats::{DualStats, NodeStats};

//! Shared cache-telemetry counters.
//!
//! One counter vocabulary for every result cache in the workspace: the
//! compile-result cache (`scope_opt::CompileCache`) and the execution-result
//! cache (`scope_runtime::ExecutionCache`) both report [`CacheStats`], so
//! per-stage attribution, deltas, and roll-ups compose the same way on both
//! sides of the pipeline.

/// Monotonic cache counters (snapshot semantics; see [`CacheStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Counter-wise sum, so per-stage deltas can be rolled up into totals (see
/// `qo_advisor`'s per-stage cache attribution in its daily report).
impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            inserts: self.inserts + rhs.inserts,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), std::ops::Add::add)
    }
}

/// Sub-bucket resolution bits per power-of-two octave. 8 sub-buckets per
/// octave bounds the relative quantile error at `1/8 = 12.5%` of the value —
/// plenty for p50/p95/p99 steering-latency reporting — while keeping the
/// whole histogram at 512 fixed buckets (4 KiB of counts).
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
const OCTAVES: usize = 64;
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A fixed-bucket, log-spaced latency histogram.
///
/// Buckets are HDR-style: one octave per power of two of the recorded value,
/// each octave split into 8 linear sub-buckets, so relative
/// resolution is constant (≤ 12.5%) across the full `u64` range and no
/// configuration (min/max/bucket count) is needed up front. Two histograms
/// are mergeable bucket-wise ([`LatencyHistogram::merge`]), which is how the
/// fleet pipeline combines per-worker recordings without sharing a counter
/// cache line across workers.
///
/// Quantiles ([`LatencyHistogram::quantile`]) report the *upper bound* of the
/// bucket holding the requested rank — a conservative (never underestimating)
/// tail-latency figure.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Bucket index for `value`: octave = position of the highest set bit,
    /// sub-bucket = the next [`SUB_BITS`] bits below it. Values below
    /// `2^SUB_BITS` land in the linear low range where each value has its
    /// own bucket.
    fn bucket_index(value: u64) -> usize {
        let bits = 64 - value.leading_zeros();
        if bits <= SUB_BITS + 1 {
            // 0..=2^(SUB_BITS+1)-1: exact, one value per bucket slot.
            return value as usize;
        }
        let octave = bits - SUB_BITS - 1;
        let sub = (value >> octave) as usize & (SUB_BUCKETS - 1);
        ((octave as usize + 1) << SUB_BITS) + sub
    }

    /// Inclusive upper bound of the values mapping to `index` (inverse of
    /// [`LatencyHistogram::bucket_index`]).
    fn bucket_upper(index: usize) -> u64 {
        if index < 2 * SUB_BUCKETS {
            return index as u64;
        }
        let octave = (index >> SUB_BITS) as u32 - 1;
        let sub = (index & (SUB_BUCKETS - 1)) as u128;
        // In u128: the top octave's last sub-bucket upper bound is 2^64 - 1,
        // which would overflow the shift in u64.
        let upper = ((SUB_BUCKETS as u128 + sub + 1) << octave) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded observation (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q * total)`
    /// (clamped to the exact observed max). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_since_and_hit_rate() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            inserts: 1,
            evictions: 0,
        };
        let b = CacheStats {
            hits: 9,
            misses: 3,
            inserts: 2,
            evictions: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 6);
        assert_eq!(d.lookups(), 8);
        assert!((d.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_exact_in_the_low_range() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.max(), 15);
        // One value per bucket below 2^(SUB_BITS+1): quantiles are exact.
        assert_eq!(h.quantile(1.0 / 16.0), 0);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        // The bucket upper bound never exceeds the true value by more than
        // 1/SUB_BUCKETS (12.5%) and never underestimates it.
        for &v in &[17u64, 100, 1_000, 123_456, 10_000_000, u64::MAX / 3] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let q = h.quantile(1.0);
            assert!(q >= v, "upper bound must not underestimate: {q} < {v}");
            let err = (q - v) as f64 / v as f64;
            assert!(err <= 0.125 + 1e-9, "relative error {err} too big for {v}");
        }
    }

    #[test]
    fn histogram_quantiles_rank_correctly() {
        let mut h = LatencyHistogram::new();
        // 99 cheap observations and one huge outlier.
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 10);
        assert_eq!(h.p95(), 10);
        // Rank ceil(0.99*100) = 99 is still the cheap bucket; p100 is the
        // outlier, reported exactly via the max clamp.
        assert_eq!(h.p99(), 10);
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [3u64, 900, 64, 17, 250_000, 31, 8] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.5), 0);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("LatencyHistogram"), "{dbg}");
    }

    #[test]
    fn stats_add_and_sum_roll_up() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            inserts: 2,
            evictions: 0,
        };
        let b = CacheStats {
            hits: 4,
            misses: 1,
            inserts: 1,
            evictions: 1,
        };
        let s = a + b;
        assert_eq!(s.hits, 5);
        assert_eq!(s.lookups(), 8);
        let total: CacheStats = [a, b].into_iter().sum();
        assert_eq!(total, s);
    }
}

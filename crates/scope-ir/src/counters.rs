//! Shared cache-telemetry counters.
//!
//! One counter vocabulary for every result cache in the workspace: the
//! compile-result cache (`scope_opt::CompileCache`) and the execution-result
//! cache (`scope_runtime::ExecutionCache`) both report [`CacheStats`], so
//! per-stage attribution, deltas, and roll-ups compose the same way on both
//! sides of the pipeline.

/// Monotonic cache counters (snapshot semantics; see [`CacheStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Counter-wise sum, so per-stage deltas can be rolled up into totals (see
/// `qo_advisor`'s per-stage cache attribution in its daily report).
impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            inserts: self.inserts + rhs.inserts,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), std::ops::Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_since_and_hit_rate() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            inserts: 1,
            evictions: 0,
        };
        let b = CacheStats {
            hits: 9,
            misses: 3,
            inserts: 2,
            evictions: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 6);
        assert_eq!(d.lookups(), 8);
        assert!((d.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn stats_add_and_sum_roll_up() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            inserts: 2,
            evictions: 0,
        };
        let b = CacheStats {
            hits: 4,
            misses: 1,
            inserts: 1,
            evictions: 1,
        };
        let s = a + b;
        assert_eq!(s.hits, 5);
        assert_eq!(s.lookups(), 8);
        let total: CacheStats = [a, b].into_iter().sum();
        assert_eq!(total, s);
    }
}

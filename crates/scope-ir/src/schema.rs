//! Row schemas for datasets flowing between operators.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Scalar data types supported by the SCOPE-like engine. The width feeds the
/// average-row-length statistic, which in turn drives I/O costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Bool,
    /// Variable-length; `avg_len` is the catalog's average byte length.
    String {
        avg_len: u16,
    },
    DateTime,
}

impl DataType {
    /// Average on-disk width in bytes, used for row-length estimation.
    #[must_use]
    pub fn avg_width(self) -> u32 {
        match self {
            DataType::Int | DataType::Float | DataType::DateTime => 8,
            DataType::Bool => 1,
            DataType::String { avg_len } => u32::from(avg_len),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Bool => write!(f, "bool"),
            DataType::String { avg_len } => write!(f, "string({avg_len})"),
            DataType::DateTime => write!(f, "datetime"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Column {
    pub name: Arc<str>,
    pub ty: DataType,
}

impl Column {
    pub fn new(name: impl Into<Arc<str>>, ty: DataType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.ty)
    }
}

/// An ordered list of columns. Cheap to clone (`Arc` column names).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    #[must_use]
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Look up a column index by name (first match).
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| &*c.name == name)
    }

    #[must_use]
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Average row width in bytes; the minimum of 1 keeps degenerate schemas
    /// (e.g. `COUNT(*)`-only outputs) from producing zero-byte rows.
    #[must_use]
    pub fn avg_row_len(&self) -> u32 {
        self.columns
            .iter()
            .map(|c| c.ty.avg_width())
            .sum::<u32>()
            .max(1)
    }

    /// Schema of `self ⧺ other`, as produced by a join.
    #[must_use]
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = Vec::with_capacity(self.len() + other.len());
        columns.extend_from_slice(&self.columns);
        columns.extend_from_slice(&other.columns);
        Schema { columns }
    }

    /// Keep only the columns at `indices`, in the given order.
    ///
    /// # Panics
    /// Panics if an index is out of range; plan validation guarantees the
    /// optimizer never constructs such a projection.
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::String { avg_len: 16 }),
            Column::new("c", DataType::Float),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = abc();
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("c"), Some(2));
        assert_eq!(s.index_of("z"), None);
    }

    #[test]
    fn avg_row_len_sums_widths() {
        assert_eq!(abc().avg_row_len(), 8 + 16 + 8);
        // Degenerate empty schema still reports 1 byte.
        assert_eq!(Schema::default().avg_row_len(), 1);
    }

    #[test]
    fn join_concatenates() {
        let s = abc().join(&abc());
        assert_eq!(s.len(), 6);
        assert_eq!(&*s.columns()[3].name, "a");
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = abc().project(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(&*s.columns()[0].name, "c");
        assert_eq!(&*s.columns()[1].name, "a");
    }

    #[test]
    fn display_formats() {
        assert_eq!(abc().to_string(), "[a:int, b:string(16), c:float]");
    }
}

//! Logical operator algebra and the arena-based plan DAG.
//!
//! A [`LogicalPlan`] is an append-only arena of [`LogicalNode`]s in which
//! every child index is strictly smaller than its parent's index. That
//! *topological-arena invariant* makes structural sharing (DAGs), traversal,
//! and validation cheap: node order is already a topological order. Rewrites
//! in `scope-opt` always construct fresh arenas bottom-up, so the invariant
//! is preserved by construction and checked by [`LogicalPlan::validate`].

use crate::expr::{AggExpr, ScalarExpr};
use crate::ids::{hash_value, stable_hash64, NodeId, TemplateId, LOGICAL_FP_SALT};
use crate::schema::{Column, DataType, Schema};
use crate::stats::DualStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A base dataset reference with dual cardinality statistics. `rows.actual`
/// is what the simulator executes against; `rows.estimated` is the (possibly
/// stale) catalog value the optimizer sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRef {
    pub name: Arc<str>,
    pub schema: Schema,
    pub rows: DualStats,
}

impl TableRef {
    pub fn new(name: impl Into<Arc<str>>, schema: Schema, rows: DualStats) -> Self {
        Self {
            name: name.into(),
            schema,
            rows,
        }
    }
}

/// Join kinds supported by the algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    LeftSemi,
}

impl JoinKind {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER",
            JoinKind::LeftOuter => "LEFT",
            JoinKind::LeftSemi => "SEMI",
        }
    }
}

/// One sort key: column index + direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SortKey {
    pub column: usize,
    pub descending: bool,
}

impl SortKey {
    #[must_use]
    pub fn asc(column: usize) -> Self {
        Self {
            column,
            descending: false,
        }
    }

    #[must_use]
    pub fn desc(column: usize) -> Self {
        Self {
            column,
            descending: true,
        }
    }
}

/// Logical operators. Arity is fixed per variant and enforced by
/// [`LogicalPlan::validate`]: `Extract` is a leaf, `Join` is binary, `Union`
/// is n-ary (n ≥ 2), everything else is unary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalOp {
    /// Scan a base dataset (SCOPE `EXTRACT`).
    Extract { table: TableRef },
    /// Row filter with dual selectivity (true vs. optimizer-visible).
    Filter {
        predicate: ScalarExpr,
        selectivity: DualStats,
    },
    /// Projection: each output column is `(expr, alias)`.
    Project { exprs: Vec<(ScalarExpr, String)> },
    /// Equi-join on `(left column, right column)` pairs. `selectivity` is the
    /// fraction of the cross product retained.
    Join {
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        selectivity: DualStats,
    },
    /// Group-by aggregation. `group_ratio` = output groups / input rows.
    Aggregate {
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        group_ratio: DualStats,
    },
    /// Bag union of n ≥ 2 identically-shaped inputs (SCOPE `UNION ALL`).
    Union,
    /// Total sort.
    Sort { keys: Vec<SortKey> },
    /// Top-k under an ordering.
    Top { k: u64, keys: Vec<SortKey> },
    /// Windowed aggregation partitioned by columns; appends one column per
    /// function.
    Window {
        partition_by: Vec<usize>,
        funcs: Vec<AggExpr>,
    },
    /// Opaque user code (SCOPE processor/reducer). `out_ratio` is rows out
    /// per row in (may exceed 1), `cpu_factor` scales per-row CPU work.
    Process {
        udf: Arc<str>,
        cpu_factor: f64,
        out_ratio: DualStats,
    },
    /// Job output sink; every root of the DAG is an `Output`.
    Output { path: Arc<str> },
}

impl LogicalOp {
    /// Expected number of children, or `None` for n-ary operators.
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        match self {
            LogicalOp::Extract { .. } => Some(0),
            LogicalOp::Join { .. } => Some(2),
            LogicalOp::Union => None,
            _ => Some(1),
        }
    }

    /// Short operator tag used in signatures and display.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            LogicalOp::Extract { .. } => "Extract",
            LogicalOp::Filter { .. } => "Filter",
            LogicalOp::Project { .. } => "Project",
            LogicalOp::Join { .. } => "Join",
            LogicalOp::Aggregate { .. } => "Aggregate",
            LogicalOp::Union => "Union",
            LogicalOp::Sort { .. } => "Sort",
            LogicalOp::Top { .. } => "Top",
            LogicalOp::Window { .. } => "Window",
            LogicalOp::Process { .. } => "Process",
            LogicalOp::Output { .. } => "Output",
        }
    }
}

/// One node of the logical DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalNode {
    pub op: LogicalOp,
    pub children: Vec<NodeId>,
}

/// Errors raised by [`LogicalPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A child index points at or beyond its parent (breaks the topological
    /// arena invariant) or outside the arena.
    BadChildIndex { parent: NodeId, child: NodeId },
    /// Operator received the wrong number of children.
    BadArity {
        node: NodeId,
        expected: usize,
        found: usize,
    },
    /// `Union` needs at least two inputs.
    UnionTooNarrow { node: NodeId, found: usize },
    /// The plan has no `Output` roots.
    NoOutputs,
    /// An output root is not an `Output` operator.
    RootNotOutput { node: NodeId },
    /// An `Output` operator appears below another operator.
    InteriorOutput { node: NodeId },
    /// An expression references a column outside the input schema.
    ColumnOutOfRange {
        node: NodeId,
        column: usize,
        input_width: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadChildIndex { parent, child } => {
                write!(f, "node {parent} references invalid child {child}")
            }
            PlanError::BadArity {
                node,
                expected,
                found,
            } => {
                write!(f, "node {node} expects {expected} children, found {found}")
            }
            PlanError::UnionTooNarrow { node, found } => {
                write!(f, "union {node} needs >= 2 inputs, found {found}")
            }
            PlanError::NoOutputs => write!(f, "plan has no outputs"),
            PlanError::RootNotOutput { node } => write!(f, "root {node} is not an Output"),
            PlanError::InteriorOutput { node } => write!(f, "Output {node} is not a root"),
            PlanError::ColumnOutOfRange {
                node,
                column,
                input_width,
            } => {
                write!(
                    f,
                    "node {node} references column {column} of {input_width}-wide input"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// An arena-based logical plan DAG with one or more `Output` roots.
///
/// `Clone`, `PartialEq`, `Debug`, and the serde impls are hand-written so
/// the [`LogicalPlan::fingerprint`] memo stays invisible: two plans compare
/// equal, print, and serialize identically whether or not their fingerprint
/// has been computed, and a clone carries the memo along.
#[derive(Default)]
pub struct LogicalPlan {
    nodes: Vec<LogicalNode>,
    outputs: Vec<NodeId>,
    /// Memoized [`LogicalPlan::fingerprint`]; 0 = not computed yet. Reset
    /// by the mutating methods, copied by `Clone`.
    fp_memo: AtomicU64,
}

impl Clone for LogicalPlan {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            outputs: self.outputs.clone(),
            fp_memo: AtomicU64::new(self.fp_memo.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for LogicalPlan {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.outputs == other.outputs
    }
}

impl fmt::Debug for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogicalPlan")
            .field("nodes", &self.nodes)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl Serialize for LogicalPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("outputs".to_string(), self.outputs.to_value()),
        ])
    }
}

impl Deserialize for LogicalPlan {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            nodes: Deserialize::from_value(value.get_field("nodes")?)?,
            outputs: Deserialize::from_value(value.get_field("outputs")?)?,
            fp_memo: AtomicU64::new(0),
        })
    }
}

impl LogicalPlan {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a node; children must already exist in the arena.
    ///
    /// # Panics
    /// Panics if a child id is out of range (programming error at plan
    /// construction time, always caught in tests via `validate`).
    pub fn add(&mut self, op: LogicalOp, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("plan too large"));
        for &c in &children {
            assert!(c.index() < self.nodes.len(), "child {c} does not exist yet");
        }
        self.nodes.push(LogicalNode { op, children });
        self.fp_memo.store(0, Ordering::Relaxed);
        id
    }

    /// Register `node` as a job output root.
    pub fn mark_output(&mut self, node: NodeId) {
        self.outputs.push(node);
        self.fp_memo.store(0, Ordering::Relaxed);
    }

    /// Append an `Output` sink over `child` and register it as a root.
    pub fn add_output(&mut self, path: impl Into<Arc<str>>, child: NodeId) -> NodeId {
        let id = self.add(LogicalOp::Output { path: path.into() }, vec![child]);
        self.mark_output(id);
        id
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[must_use]
    pub fn node(&self, id: NodeId) -> &LogicalNode {
        &self.nodes[id.index()]
    }

    #[must_use]
    pub fn nodes(&self) -> &[LogicalNode] {
        &self.nodes
    }

    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All node ids reachable from the outputs, in topological (child before
    /// parent) order. With the arena invariant this is simply ascending index
    /// order over the reachable set.
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            stack.extend_from_slice(&self.nodes[id.index()].children);
        }
        (0..self.nodes.len())
            .filter(|&i| reachable[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Number of operators reachable from outputs, by tag.
    #[must_use]
    pub fn count_tag(&self, tag: &str) -> usize {
        self.topo_order()
            .iter()
            .filter(|id| self.node(**id).op.tag() == tag)
            .count()
    }

    /// Compute the output schema of every node (indexed by arena slot).
    /// Unreachable slots still get schemas; the computation is one linear
    /// pass thanks to the arena invariant.
    #[must_use]
    pub fn schemas(&self) -> Vec<Schema> {
        let mut out: Vec<Schema> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let schema = match &node.op {
                LogicalOp::Extract { table } => table.schema.clone(),
                LogicalOp::Filter { .. }
                | LogicalOp::Sort { .. }
                | LogicalOp::Top { .. }
                | LogicalOp::Output { .. } => out[node.children[0].index()].clone(),
                LogicalOp::Process { .. } => out[node.children[0].index()].clone(),
                LogicalOp::Union => out[node.children[0].index()].clone(),
                LogicalOp::Project { exprs } => {
                    let input = &out[node.children[0].index()];
                    Schema::new(
                        exprs
                            .iter()
                            .map(|(e, alias)| Column::new(alias.clone(), infer_type(e, input)))
                            .collect(),
                    )
                }
                LogicalOp::Join { .. } => {
                    let l = &out[node.children[0].index()];
                    let r = &out[node.children[1].index()];
                    l.join(r)
                }
                LogicalOp::Aggregate { group_by, aggs, .. } => {
                    let input = &out[node.children[0].index()];
                    let mut cols: Vec<Column> = group_by
                        .iter()
                        .map(|&i| {
                            input
                                .column(i)
                                .cloned()
                                .unwrap_or_else(|| Column::new(format!("g{i}"), DataType::Int))
                        })
                        .collect();
                    cols.extend(
                        aggs.iter()
                            .map(|a| Column::new(a.alias.clone(), DataType::Float)),
                    );
                    Schema::new(cols)
                }
                LogicalOp::Window { funcs, .. } => {
                    let input = &out[node.children[0].index()];
                    let mut cols = input.columns().to_vec();
                    cols.extend(
                        funcs
                            .iter()
                            .map(|a| Column::new(a.alias.clone(), DataType::Float)),
                    );
                    Schema::new(cols)
                }
            };
            out.push(schema);
        }
        out
    }

    /// Validate all structural invariants. Every plan produced by the binder,
    /// the workload generator, or the optimizer must pass.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.outputs.is_empty() {
            return Err(PlanError::NoOutputs);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for &c in &node.children {
                if c.index() >= i {
                    return Err(PlanError::BadChildIndex {
                        parent: id,
                        child: c,
                    });
                }
            }
            match node.op.arity() {
                Some(expected) if node.children.len() != expected => {
                    return Err(PlanError::BadArity {
                        node: id,
                        expected,
                        found: node.children.len(),
                    });
                }
                None if node.children.len() < 2 => {
                    return Err(PlanError::UnionTooNarrow {
                        node: id,
                        found: node.children.len(),
                    });
                }
                _ => {}
            }
        }
        for &root in &self.outputs {
            if root.index() >= self.nodes.len() {
                return Err(PlanError::BadChildIndex {
                    parent: root,
                    child: root,
                });
            }
            if !matches!(self.node(root).op, LogicalOp::Output { .. }) {
                return Err(PlanError::RootNotOutput { node: root });
            }
        }
        // Output operators must be roots only.
        let roots: Vec<usize> = self.outputs.iter().map(|o| o.index()).collect();
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.op, LogicalOp::Output { .. }) && !roots.contains(&i) {
                // Tolerated only if unreachable (dead arena slot).
                let reachable = self.topo_order().iter().any(|n| n.index() == i);
                if reachable {
                    return Err(PlanError::InteriorOutput {
                        node: NodeId(i as u32),
                    });
                }
            }
        }
        self.validate_columns()
    }

    fn validate_columns(&self) -> Result<(), PlanError> {
        let schemas = self.schemas();
        let check = |node: NodeId, cols: &[usize], width: usize| -> Result<(), PlanError> {
            for &c in cols {
                if c >= width {
                    return Err(PlanError::ColumnOutOfRange {
                        node,
                        column: c,
                        input_width: width,
                    });
                }
            }
            Ok(())
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match &node.op {
                LogicalOp::Filter { predicate, .. } => {
                    let width = schemas[node.children[0].index()].len();
                    let mut cols = Vec::new();
                    predicate.collect_columns(&mut cols);
                    check(id, &cols, width)?;
                }
                LogicalOp::Project { exprs } => {
                    let width = schemas[node.children[0].index()].len();
                    let mut cols = Vec::new();
                    for (e, _) in exprs {
                        e.collect_columns(&mut cols);
                    }
                    check(id, &cols, width)?;
                }
                LogicalOp::Join { on, .. } => {
                    let lw = schemas[node.children[0].index()].len();
                    let rw = schemas[node.children[1].index()].len();
                    for &(l, r) in on {
                        check(id, &[l], lw)?;
                        check(id, &[r], rw)?;
                    }
                }
                LogicalOp::Aggregate { group_by, aggs, .. } => {
                    let width = schemas[node.children[0].index()].len();
                    check(id, group_by, width)?;
                    let agg_cols: Vec<usize> = aggs.iter().filter_map(|a| a.input).collect();
                    check(id, &agg_cols, width)?;
                }
                LogicalOp::Sort { keys } | LogicalOp::Top { keys, .. } => {
                    let width = schemas[node.children[0].index()].len();
                    let cols: Vec<usize> = keys.iter().map(|k| k.column).collect();
                    check(id, &cols, width)?;
                }
                LogicalOp::Window {
                    partition_by,
                    funcs,
                } => {
                    let width = schemas[node.children[0].index()].len();
                    check(id, partition_by, width)?;
                    let cols: Vec<usize> = funcs.iter().filter_map(|a| a.input).collect();
                    check(id, &cols, width)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Structural fingerprint of the plan that is invariant across recurring
    /// instances of the same template (literal values and table cardinalities
    /// are masked; operator structure, columns, and table names are kept).
    #[must_use]
    pub fn normalized_signature(&self) -> String {
        let mut s = String::with_capacity(self.nodes.len() * 16);
        for id in self.topo_order() {
            let node = self.node(id);
            s.push_str(node.op.tag());
            match &node.op {
                LogicalOp::Extract { table } => {
                    s.push(':');
                    s.push_str(&table.name);
                }
                LogicalOp::Filter { predicate, .. } => {
                    s.push(':');
                    predicate.normalized(&mut s);
                }
                LogicalOp::Project { exprs } => {
                    s.push(':');
                    for (e, _) in exprs {
                        e.normalized(&mut s);
                        s.push(',');
                    }
                }
                LogicalOp::Join { kind, on, .. } => {
                    s.push(':');
                    s.push_str(kind.name());
                    for (l, r) in on {
                        s.push_str(&format!("{l}={r},"));
                    }
                }
                LogicalOp::Aggregate { group_by, aggs, .. } => {
                    s.push(':');
                    for g in group_by {
                        s.push_str(&format!("g{g},"));
                    }
                    for a in aggs {
                        s.push_str(a.func.name());
                        s.push(',');
                    }
                }
                LogicalOp::Output { path } => {
                    s.push(':');
                    s.push_str(path);
                }
                _ => {}
            }
            s.push('|');
            for c in &node.children {
                s.push_str(&format!("{c},"));
            }
            s.push(';');
        }
        s
    }

    /// Template identity derived from the normalized signature.
    #[must_use]
    pub fn template_id(&self) -> TemplateId {
        TemplateId(stable_hash64(self.normalized_signature().as_bytes()))
    }

    /// Exact fingerprint of this plan: a stable hash over its serialized
    /// form — operators, expressions, **literals**, estimated *and* actual
    /// statistics. Two plans with equal fingerprints compile identically
    /// under any configuration, which is what makes this the compile-result
    /// cache key; contrast [`LogicalPlan::template_id`], which normalizes
    /// literals away and so conflates plans that compile differently.
    ///
    /// Memoized: the first call walks the plan, later calls (including on
    /// clones of an already-fingerprinted plan) are one atomic load.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let memo = self.fp_memo.load(Ordering::Relaxed);
        if memo != 0 {
            debug_assert_eq!(
                memo,
                hash_value(&self.to_value(), LOGICAL_FP_SALT).max(1),
                "memoized logical fingerprint diverged from a fresh recompute \
                 (plan mutated after fingerprinting?)"
            );
            return memo;
        }
        let fp = hash_value(&self.to_value(), LOGICAL_FP_SALT).max(1);
        self.fp_memo.store(fp, Ordering::Relaxed);
        fp
    }

    /// The sub-DAG (as a set of node ids) under one output root. SCOPE
    /// generates some statistics per output tree and some per job; feature
    /// aggregation (Table 1) needs this split.
    #[must_use]
    pub fn output_tree(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut tree = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            tree.push(id);
            stack.extend_from_slice(&self.node(id).children);
        }
        tree.sort_unstable();
        tree
    }
}

/// Minimal type inference for projection expressions.
fn infer_type(e: &ScalarExpr, input: &Schema) -> DataType {
    match e {
        ScalarExpr::Column(i) => input.column(*i).map_or(DataType::Int, |c| c.ty),
        ScalarExpr::Literal(v) => match v {
            crate::expr::Value::Int(_) => DataType::Int,
            crate::expr::Value::Float(_) => DataType::Float,
            crate::expr::Value::Str(s) => DataType::String {
                avg_len: s.len() as u16,
            },
            crate::expr::Value::Bool(_) => DataType::Bool,
        },
        ScalarExpr::Binary { op, .. } if op.is_comparison() => DataType::Bool,
        ScalarExpr::Binary { .. } => DataType::Float,
        ScalarExpr::Udf { .. } => DataType::Float,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, BinOp};

    fn table(name: &str, rows: f64) -> TableRef {
        TableRef::new(
            name,
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("c", DataType::String { avg_len: 20 }),
            ]),
            DualStats::exact(rows),
        )
    }

    /// scan -> filter -> join(scan) -> agg -> output, plus a second output
    /// sharing the filter (a genuine DAG).
    fn sample_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new();
        let s1 = p.add(
            LogicalOp::Extract {
                table: table("t1", 1000.0),
            },
            vec![],
        );
        let f = p.add(
            LogicalOp::Filter {
                predicate: ScalarExpr::binary(
                    BinOp::Gt,
                    ScalarExpr::col(0),
                    ScalarExpr::lit_int(5),
                ),
                selectivity: DualStats::new(0.2, 0.33),
            },
            vec![s1],
        );
        let s2 = p.add(
            LogicalOp::Extract {
                table: table("t2", 500.0),
            },
            vec![],
        );
        let j = p.add(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(0.001),
            },
            vec![f, s2],
        );
        let a = p.add(
            LogicalOp::Aggregate {
                group_by: vec![1],
                aggs: vec![AggExpr::new(AggFunc::Sum, Some(0), "s")],
                group_ratio: DualStats::exact(0.01),
            },
            vec![j],
        );
        p.add_output("out1", a);
        let t = p.add(
            LogicalOp::Top {
                k: 10,
                keys: vec![SortKey::desc(0)],
            },
            vec![f],
        );
        p.add_output("out2", t);
        p
    }

    #[test]
    fn sample_plan_validates() {
        sample_plan().validate().expect("plan must be valid");
    }

    #[test]
    fn topo_order_is_child_first() {
        let p = sample_plan();
        let order = p.topo_order();
        let pos: Vec<usize> = order.iter().map(|n| n.index()).collect();
        for id in &order {
            for c in &p.node(*id).children {
                let ci = pos.iter().position(|&x| x == c.index()).unwrap();
                let pi = pos.iter().position(|&x| x == id.index()).unwrap();
                assert!(ci < pi, "child {c} must precede parent {id}");
            }
        }
    }

    #[test]
    fn dag_shares_subplans_across_outputs() {
        let p = sample_plan();
        assert_eq!(p.outputs().len(), 2);
        let t1 = p.output_tree(p.outputs()[0]);
        let t2 = p.output_tree(p.outputs()[1]);
        // The filter node (id 1) is in both trees.
        assert!(t1.contains(&NodeId(1)));
        assert!(t2.contains(&NodeId(1)));
    }

    #[test]
    fn schemas_propagate() {
        let p = sample_plan();
        let schemas = p.schemas();
        // Join output = 3 + 3 columns.
        assert_eq!(schemas[3].len(), 6);
        // Aggregate output = 1 group col + 1 agg.
        assert_eq!(schemas[4].len(), 2);
        assert_eq!(&*schemas[4].columns()[1].name, "s");
    }

    #[test]
    fn validate_rejects_forward_children() {
        let mut p = LogicalPlan::new();
        let s = p.add(
            LogicalOp::Extract {
                table: table("t", 1.0),
            },
            vec![],
        );
        p.add_output("o", s);
        // Manually corrupt: make node 0 point at node 1.
        let mut broken = p.clone();
        broken.nodes[0].children.push(NodeId(1));
        assert!(matches!(
            broken.validate(),
            Err(PlanError::BadArity { .. }) | Err(PlanError::BadChildIndex { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut p = LogicalPlan::new();
        let s = p.add(
            LogicalOp::Extract {
                table: table("t", 1.0),
            },
            vec![],
        );
        let f = p.add(
            LogicalOp::Filter {
                predicate: ScalarExpr::lit_int(1),
                selectivity: DualStats::exact(1.0),
            },
            vec![s],
        );
        p.add_output("o", f);
        let mut broken = p.clone();
        broken.nodes[1].children.clear();
        assert!(matches!(broken.validate(), Err(PlanError::BadArity { .. })));
    }

    #[test]
    fn validate_rejects_no_outputs() {
        let mut p = LogicalPlan::new();
        p.add(
            LogicalOp::Extract {
                table: table("t", 1.0),
            },
            vec![],
        );
        assert_eq!(p.validate(), Err(PlanError::NoOutputs));
    }

    #[test]
    fn validate_rejects_out_of_range_columns() {
        let mut p = LogicalPlan::new();
        let s = p.add(
            LogicalOp::Extract {
                table: table("t", 1.0),
            },
            vec![],
        );
        let f = p.add(
            LogicalOp::Filter {
                predicate: ScalarExpr::binary(
                    BinOp::Eq,
                    ScalarExpr::col(17),
                    ScalarExpr::lit_int(1),
                ),
                selectivity: DualStats::exact(0.5),
            },
            vec![s],
        );
        p.add_output("o", f);
        assert!(matches!(
            p.validate(),
            Err(PlanError::ColumnOutOfRange { column: 17, .. })
        ));
    }

    #[test]
    fn template_id_invariant_to_literals_and_cardinality() {
        let make = |lit: i64, rows: f64| {
            let mut p = LogicalPlan::new();
            let s = p.add(
                LogicalOp::Extract {
                    table: table("t", rows),
                },
                vec![],
            );
            let f = p.add(
                LogicalOp::Filter {
                    predicate: ScalarExpr::binary(
                        BinOp::Gt,
                        ScalarExpr::col(0),
                        ScalarExpr::lit_int(lit),
                    ),
                    selectivity: DualStats::exact(0.5),
                },
                vec![s],
            );
            p.add_output("o", f);
            p
        };
        assert_eq!(
            make(5, 100.0).template_id(),
            make(999, 5000.0).template_id()
        );
        // Different table name => different template.
        let mut other = LogicalPlan::new();
        let s = other.add(
            LogicalOp::Extract {
                table: table("zz", 100.0),
            },
            vec![],
        );
        other.add_output("o", s);
        assert_ne!(make(5, 100.0).template_id(), other.template_id());
    }

    #[test]
    fn count_tag_counts_reachable_ops() {
        let p = sample_plan();
        assert_eq!(p.count_tag("Extract"), 2);
        assert_eq!(p.count_tag("Output"), 2);
        assert_eq!(p.count_tag("Join"), 1);
    }

    #[test]
    fn fingerprint_is_exact_where_template_id_normalizes() {
        let make = |lit: i64, rows: f64| {
            let mut p = LogicalPlan::new();
            let s = p.add(
                LogicalOp::Extract {
                    table: table("t", rows),
                },
                vec![],
            );
            let f = p.add(
                LogicalOp::Filter {
                    predicate: ScalarExpr::binary(
                        BinOp::Gt,
                        ScalarExpr::col(0),
                        ScalarExpr::lit_int(lit),
                    ),
                    selectivity: DualStats::exact(0.5),
                },
                vec![s],
            );
            p.add_output("o", f);
            p
        };
        // Identical plans agree; deterministically.
        assert_eq!(make(5, 100.0).fingerprint(), make(5, 100.0).fingerprint());
        // Literal or statistics changes are invisible to the template id
        // but MUST change the fingerprint (they change compile results).
        assert_eq!(make(5, 100.0).template_id(), make(9, 100.0).template_id());
        assert_ne!(make(5, 100.0).fingerprint(), make(9, 100.0).fingerprint());
        assert_ne!(make(5, 100.0).fingerprint(), make(5, 200.0).fingerprint());
    }

    #[test]
    fn fingerprint_memo_is_invisible_and_reset_on_mutation() {
        let mut p = sample_plan();
        let pristine = p.clone();
        let fp = p.fingerprint();
        // The memo must not leak into equality, Debug, or serialization.
        assert_eq!(p, pristine);
        assert_eq!(format!("{p:?}"), format!("{pristine:?}"));
        assert_eq!(p.to_value(), pristine.to_value());
        // Clones carry the memo and agree.
        assert_eq!(p.clone().fingerprint(), fp);
        // A deserialized copy recomputes to the same value.
        let back = LogicalPlan::from_value(&p.to_value()).unwrap();
        assert_eq!(back.fingerprint(), fp);
        // Mutation invalidates the memo.
        let extra = p.add(
            LogicalOp::Extract {
                table: table("zz", 7.0),
            },
            vec![],
        );
        p.mark_output(extra);
        assert_ne!(p.fingerprint(), fp);
    }
}

//! Scalar and aggregate expressions, plus textbook selectivity heuristics.
//!
//! The engine never materializes rows, so expressions exist for three
//! purposes: (1) carrying predicate structure that rewrite rules inspect,
//! (2) estimating selectivities the optimizer's cost model consumes, and
//! (3) normalizing into template signatures for recurring-job detection.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// True for comparison operators that produce booleans.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Scalar expression over the input schema of an operator. Column references
/// are positional (`Column(i)` is the i-th input column), which keeps rewrite
/// rules free of name-resolution concerns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarExpr {
    Column(usize),
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// An opaque scalar UDF: SCOPE scripts routinely call user code. The
    /// `cpu_factor` scales per-row CPU work in the runtime profile.
    Udf {
        name: String,
        args: Vec<ScalarExpr>,
        cpu_factor: f64,
    },
}

impl ScalarExpr {
    pub fn col(i: usize) -> Self {
        ScalarExpr::Column(i)
    }

    pub fn lit_int(v: i64) -> Self {
        ScalarExpr::Literal(Value::Int(v))
    }

    pub fn binary(op: BinOp, left: ScalarExpr, right: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// All column indices referenced by this expression.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Column(i) => out.push(*i),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            ScalarExpr::Udf { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Rewrite column references through `map`: `Column(i)` becomes
    /// `Column(map(i))`. Used when predicates are pushed through projections
    /// or join sides.
    #[must_use]
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Column(i) => ScalarExpr::Column(map(*i)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            ScalarExpr::Udf {
                name,
                args,
                cpu_factor,
            } => ScalarExpr::Udf {
                name: name.clone(),
                args: args.iter().map(|a| a.remap_columns(map)).collect(),
                cpu_factor: *cpu_factor,
            },
        }
    }

    /// Textbook selectivity heuristic (System R-style defaults). This is what
    /// the *optimizer* believes; the workload generator attaches the true
    /// selectivity separately, so the gap between the two is a deliberate,
    /// controllable source of cost-model error (paper §2.2, §5.2).
    #[must_use]
    pub fn heuristic_selectivity(&self) -> f64 {
        match self {
            ScalarExpr::Binary { op, left, right } => match op {
                BinOp::Eq => 0.1,
                BinOp::Ne => 0.9,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1.0 / 3.0,
                BinOp::And => {
                    (left.heuristic_selectivity() * right.heuristic_selectivity()).max(1e-6)
                }
                BinOp::Or => {
                    let l = left.heuristic_selectivity();
                    let r = right.heuristic_selectivity();
                    (l + r - l * r).min(1.0)
                }
                _ => 1.0,
            },
            ScalarExpr::Udf { .. } => 0.5,
            _ => 1.0,
        }
    }

    /// Per-row CPU weight of evaluating this expression (arbitrary units,
    /// consumed by the runtime profile).
    #[must_use]
    pub fn cpu_weight(&self) -> f64 {
        match self {
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => 0.05,
            ScalarExpr::Binary { left, right, .. } => 0.1 + left.cpu_weight() + right.cpu_weight(),
            ScalarExpr::Udf {
                args, cpu_factor, ..
            } => 1.0 * cpu_factor + args.iter().map(ScalarExpr::cpu_weight).sum::<f64>(),
        }
    }

    /// A structural fingerprint that ignores literal *values* but keeps
    /// literal *presence*: two instances of the same recurring template parse
    /// to the same normalized form even though their filter constants differ.
    pub fn normalized(&self, out: &mut String) {
        match self {
            ScalarExpr::Column(i) => {
                out.push('c');
                out.push_str(&i.to_string());
            }
            ScalarExpr::Literal(_) => out.push('?'),
            ScalarExpr::Binary { op, left, right } => {
                out.push('(');
                left.normalized(out);
                out.push_str(op.symbol());
                right.normalized(out);
                out.push(')');
            }
            ScalarExpr::Udf { name, args, .. } => {
                out.push_str(name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    a.normalized(out);
                }
                out.push(')');
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "${i}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::Udf { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    CountDistinct,
}

impl AggFunc {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
            AggFunc::CountDistinct => "COUNT_DISTINCT",
        }
    }

    /// Whether the aggregate can be split into partial (local) and final
    /// (global) phases — the hook for the local/global aggregation rule.
    #[must_use]
    pub fn decomposable(self) -> bool {
        !matches!(self, AggFunc::CountDistinct)
    }
}

/// One aggregate expression, e.g. `SUM($2) AS total`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggExpr {
    pub func: AggFunc,
    /// Input column index; `None` means `COUNT(*)`.
    pub input: Option<usize>,
    pub alias: String,
}

impl AggExpr {
    pub fn new(func: AggFunc, input: Option<usize>, alias: impl Into<String>) -> Self {
        Self {
            func,
            input,
            alias: alias.into(),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.input {
            Some(i) => write!(f, "{}(${i}) AS {}", self.func.name(), self.alias),
            None => write!(f, "{}(*) AS {}", self.func.name(), self.alias),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> ScalarExpr {
        // ($0 > 10) AND ($1 == "x")
        ScalarExpr::binary(
            BinOp::And,
            ScalarExpr::binary(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit_int(10)),
            ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col(1),
                ScalarExpr::Literal(Value::Str("x".into())),
            ),
        )
    }

    #[test]
    fn collect_columns_walks_tree() {
        let mut cols = Vec::new();
        pred().collect_columns(&mut cols);
        assert_eq!(cols, vec![0, 1]);
    }

    #[test]
    fn remap_columns_shifts_indices() {
        let shifted = pred().remap_columns(&|i| i + 5);
        let mut cols = Vec::new();
        shifted.collect_columns(&mut cols);
        assert_eq!(cols, vec![5, 6]);
    }

    #[test]
    fn heuristic_selectivity_composes() {
        // AND of range (1/3) and equality (0.1).
        let s = pred().heuristic_selectivity();
        assert!((s - (1.0 / 3.0) * 0.1).abs() < 1e-12);
    }

    #[test]
    fn or_selectivity_is_inclusion_exclusion() {
        let p = ScalarExpr::binary(
            BinOp::Or,
            ScalarExpr::binary(BinOp::Eq, ScalarExpr::col(0), ScalarExpr::lit_int(1)),
            ScalarExpr::binary(BinOp::Eq, ScalarExpr::col(0), ScalarExpr::lit_int(2)),
        );
        let s = p.heuristic_selectivity();
        assert!((s - (0.1 + 0.1 - 0.01)).abs() < 1e-12);
    }

    #[test]
    fn normalized_ignores_literal_values() {
        let a = ScalarExpr::binary(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit_int(10));
        let b = ScalarExpr::binary(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit_int(99));
        let (mut na, mut nb) = (String::new(), String::new());
        a.normalized(&mut na);
        b.normalized(&mut nb);
        assert_eq!(na, nb);
        assert_eq!(na, "(c0>?)");
    }

    #[test]
    fn display_roundtrips_structure() {
        assert_eq!(pred().to_string(), "(($0 > 10) AND ($1 == \"x\"))");
        assert_eq!(
            AggExpr::new(AggFunc::Sum, Some(2), "t").to_string(),
            "SUM($2) AS t"
        );
        assert_eq!(
            AggExpr::new(AggFunc::Count, None, "n").to_string(),
            "COUNT(*) AS n"
        );
    }

    #[test]
    fn udf_cpu_weight_scales() {
        let u = ScalarExpr::Udf {
            name: "f".into(),
            args: vec![ScalarExpr::col(0)],
            cpu_factor: 3.0,
        };
        assert!(u.cpu_weight() > 3.0);
    }

    #[test]
    fn count_distinct_not_decomposable() {
        assert!(AggFunc::Sum.decomposable());
        assert!(!AggFunc::CountDistinct.decomposable());
    }
}

//! Physical operators and the executable plan DAG.
//!
//! Physical plans are what the optimizer's implementation rules produce and
//! what the runtime simulator executes. Compared to the logical algebra they
//! add: operator *flavors* (hash vs. merge join, hash vs. stream aggregate),
//! explicit [`Exchange`](PhysicalOp::Exchange) operators that move data
//! between stages, and a [`PhysicalTuning`] knob block that parametric
//! optimizer rules use to express alternative physical configurations.

use crate::expr::{AggExpr, ScalarExpr};
use crate::ids::{hash_value, NodeId, PHYSICAL_FP_SALT};
use crate::logical::{JoinKind, SortKey};
use crate::stats::NodeStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How rows are distributed across the vertices of a stage.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Partitioning {
    /// Hash-partition on columns into `partitions` buckets.
    Hash {
        columns: Vec<usize>,
        partitions: u32,
    },
    /// Range-partition on sort keys (used below merge joins / global sorts).
    Range {
        columns: Vec<usize>,
        partitions: u32,
    },
    /// Replicate the full dataset to every consumer vertex.
    Broadcast,
    /// Gather everything to a single vertex.
    Gather,
}

impl Partitioning {
    /// Number of output partitions (consumer-side parallelism).
    #[must_use]
    pub fn partitions(&self) -> u32 {
        match self {
            Partitioning::Hash { partitions, .. } | Partitioning::Range { partitions, .. } => {
                *partitions
            }
            Partitioning::Broadcast => 1,
            Partitioning::Gather => 1,
        }
    }

    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Partitioning::Hash { .. } => "Hash",
            Partitioning::Range { .. } => "Range",
            Partitioning::Broadcast => "Broadcast",
            Partitioning::Gather => "Gather",
        }
    }
}

/// Scan implementation flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScanVariant {
    /// Plain sequential extract.
    Sequential,
    /// Extract with early projection/column pruning applied.
    Pruned,
}

/// Aggregation execution mode, produced by the local/global split rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggMode {
    /// Single-phase aggregation (after a full shuffle on the keys).
    Single,
    /// Local pre-aggregation before the shuffle.
    Partial,
    /// Final aggregation of partials after the shuffle.
    Final,
}

/// Multiplicative knobs attached to every physical operator. Implementation
/// rules leave these at identity; *parametric* rules (the long tail of the
/// 256-rule registry) produce alternatives with non-identity knobs, modelling
/// SCOPE rules that trade CPU for I/O or change intra-stage parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalTuning {
    /// Scales per-row CPU work of this operator.
    pub cpu_mult: f64,
    /// Scales bytes written by this operator (e.g. compression trade-offs).
    pub io_mult: f64,
    /// Scales the parallelism of the stage this operator anchors.
    pub parallelism_mult: f64,
}

impl PhysicalTuning {
    pub const IDENTITY: PhysicalTuning = PhysicalTuning {
        cpu_mult: 1.0,
        io_mult: 1.0,
        parallelism_mult: 1.0,
    };

    #[must_use]
    pub fn is_identity(&self) -> bool {
        self == &Self::IDENTITY
    }
}

impl Default for PhysicalTuning {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// Physical operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOp {
    TableScan {
        table: Arc<str>,
        variant: ScanVariant,
    },
    FilterExec {
        predicate: ScalarExpr,
    },
    ProjectExec {
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Build-side is always the right child.
    HashJoin {
        kind: JoinKind,
        on: Vec<(usize, usize)>,
    },
    /// Requires both inputs range-partitioned + sorted on the keys.
    MergeJoin {
        kind: JoinKind,
        on: Vec<(usize, usize)>,
    },
    /// Right side broadcast to every left vertex; no shuffle of the left.
    BroadcastJoin {
        kind: JoinKind,
        on: Vec<(usize, usize)>,
    },
    HashAggregate {
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        mode: AggMode,
    },
    /// Requires input sorted on the grouping keys.
    StreamAggregate {
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        mode: AggMode,
    },
    SortExec {
        keys: Vec<SortKey>,
    },
    TopNExec {
        k: u64,
        keys: Vec<SortKey>,
    },
    WindowExec {
        partition_by: Vec<usize>,
        funcs: Vec<AggExpr>,
    },
    ProcessExec {
        udf: Arc<str>,
        cpu_factor: f64,
    },
    UnionAllExec,
    /// Stage boundary: repartition/move data.
    Exchange {
        scheme: Partitioning,
    },
    OutputExec {
        path: Arc<str>,
    },
}

impl PhysicalOp {
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            PhysicalOp::TableScan { .. } => "TableScan",
            PhysicalOp::FilterExec { .. } => "FilterExec",
            PhysicalOp::ProjectExec { .. } => "ProjectExec",
            PhysicalOp::HashJoin { .. } => "HashJoin",
            PhysicalOp::MergeJoin { .. } => "MergeJoin",
            PhysicalOp::BroadcastJoin { .. } => "BroadcastJoin",
            PhysicalOp::HashAggregate { .. } => "HashAggregate",
            PhysicalOp::StreamAggregate { .. } => "StreamAggregate",
            PhysicalOp::SortExec { .. } => "SortExec",
            PhysicalOp::TopNExec { .. } => "TopNExec",
            PhysicalOp::WindowExec { .. } => "WindowExec",
            PhysicalOp::ProcessExec { .. } => "ProcessExec",
            PhysicalOp::UnionAllExec => "UnionAllExec",
            PhysicalOp::Exchange { .. } => "Exchange",
            PhysicalOp::OutputExec { .. } => "OutputExec",
        }
    }

    /// Whether this operator starts a new stage (its input crosses the
    /// network). The runtime simulator cuts the plan into stages here.
    #[must_use]
    pub fn is_stage_boundary(&self) -> bool {
        matches!(self, PhysicalOp::Exchange { .. })
    }
}

/// One node of the physical DAG, with statistics stamped by the optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalNode {
    pub op: PhysicalOp,
    pub children: Vec<NodeId>,
    pub stats: NodeStats,
    pub tuning: PhysicalTuning,
}

/// Arena-based physical plan with the same topological-arena invariant as
/// [`crate::LogicalPlan`].
///
/// `Clone`, `PartialEq`, `Debug`, and the serde impls are hand-written so
/// the [`PhysicalPlan::fingerprint`] memo stays invisible: two plans compare
/// equal, print, and serialize identically whether or not their fingerprint
/// has been computed, and a clone carries the memo along (mirroring
/// [`crate::LogicalPlan`]'s compile-cache fingerprint).
#[derive(Default)]
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
    outputs: Vec<NodeId>,
    /// Memoized [`PhysicalPlan::fingerprint`]; 0 = not computed yet. Reset
    /// by the mutating methods, copied by `Clone`.
    fp_memo: AtomicU64,
}

impl Clone for PhysicalPlan {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            outputs: self.outputs.clone(),
            fp_memo: AtomicU64::new(self.fp_memo.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for PhysicalPlan {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.outputs == other.outputs
    }
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalPlan")
            .field("nodes", &self.nodes)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl Serialize for PhysicalPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("outputs".to_string(), self.outputs.to_value()),
        ])
    }
}

impl Deserialize for PhysicalPlan {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            nodes: Deserialize::from_value(value.get_field("nodes")?)?,
            outputs: Deserialize::from_value(value.get_field("outputs")?)?,
            fp_memo: AtomicU64::new(0),
        })
    }
}

impl PhysicalPlan {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a node; children must already exist.
    pub fn add(&mut self, node: PhysicalNode) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("plan too large"));
        for &c in &node.children {
            assert!(c.index() < self.nodes.len(), "child {c} does not exist yet");
        }
        self.nodes.push(node);
        self.fp_memo.store(0, Ordering::Relaxed);
        id
    }

    pub fn mark_output(&mut self, node: NodeId) {
        self.outputs.push(node);
        self.fp_memo.store(0, Ordering::Relaxed);
    }

    /// Exact fingerprint of this plan: a stable hash over its serialized
    /// form — operators, expressions, literals, statistics, and tuning
    /// knobs. Two plans with equal fingerprints execute identically under
    /// any `(cluster, job_seed, run_seed)`, which is what makes this the
    /// execution-result cache key (the runtime simulator is a pure function
    /// of the plan bytes, the cluster model, and the seeds).
    ///
    /// Memoized: the first call walks the plan, later calls (including on
    /// clones of an already-fingerprinted plan) are one atomic load.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let memo = self.fp_memo.load(Ordering::Relaxed);
        if memo != 0 {
            debug_assert_eq!(
                memo,
                hash_value(&self.to_value(), PHYSICAL_FP_SALT).max(1),
                "memoized physical fingerprint diverged from a fresh recompute \
                 (plan mutated after fingerprinting?)"
            );
            return memo;
        }
        let fp = hash_value(&self.to_value(), PHYSICAL_FP_SALT).max(1);
        self.fp_memo.store(fp, Ordering::Relaxed);
        fp
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[must_use]
    pub fn node(&self, id: NodeId) -> &PhysicalNode {
        &self.nodes[id.index()]
    }

    #[must_use]
    pub fn nodes(&self) -> &[PhysicalNode] {
        &self.nodes
    }

    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Reachable nodes in topological (child-first) order.
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            stack.extend_from_slice(&self.nodes[id.index()].children);
        }
        (0..self.nodes.len())
            .filter(|&i| reachable[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Count reachable operators by tag.
    #[must_use]
    pub fn count_tag(&self, tag: &str) -> usize {
        self.topo_order()
            .iter()
            .filter(|id| self.node(**id).op.tag() == tag)
            .count()
    }

    /// Number of exchanges (≈ number of stage boundaries).
    #[must_use]
    pub fn exchange_count(&self) -> usize {
        self.count_tag("Exchange")
    }

    /// Structural validation (same invariants as the logical plan).
    pub fn validate(&self) -> Result<(), String> {
        if self.outputs.is_empty() {
            return Err("physical plan has no outputs".into());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if c.index() >= i {
                    return Err(format!("node n{i} references forward child {c}"));
                }
            }
            let expected = match &node.op {
                PhysicalOp::TableScan { .. } => Some(0),
                PhysicalOp::HashJoin { .. }
                | PhysicalOp::MergeJoin { .. }
                | PhysicalOp::BroadcastJoin { .. } => Some(2),
                PhysicalOp::UnionAllExec => None,
                _ => Some(1),
            };
            match expected {
                Some(e) if node.children.len() != e => {
                    return Err(format!(
                        "node n{i} ({}) expects {e} children, found {}",
                        node.op.tag(),
                        node.children.len()
                    ));
                }
                None if node.children.len() < 2 => {
                    return Err(format!("union n{i} needs >= 2 children"));
                }
                _ => {}
            }
        }
        for &o in &self.outputs {
            if !matches!(self.node(o).op, PhysicalOp::OutputExec { .. }) {
                return Err(format!("root {o} is not OutputExec"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &root) in self.outputs.iter().enumerate() {
            writeln!(f, "-- output {i} --")?;
            let mut stack = vec![(root, 0usize)];
            while let Some((id, depth)) = stack.pop() {
                let node = self.node(id);
                writeln!(
                    f,
                    "{:indent$}{} [{}]",
                    "",
                    node.op.tag(),
                    id,
                    indent = depth * 2
                )?;
                for &c in node.children.iter().rev() {
                    stack.push((c, depth + 1));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{DualStats, NodeStats};

    fn scan(plan: &mut PhysicalPlan, name: &str, rows: f64) -> NodeId {
        plan.add(PhysicalNode {
            op: PhysicalOp::TableScan {
                table: name.into(),
                variant: ScanVariant::Sequential,
            },
            children: vec![],
            stats: NodeStats::table(rows, rows, 10.0),
            tuning: PhysicalTuning::IDENTITY,
        })
    }

    fn sample() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let s1 = scan(&mut p, "t1", 1000.0);
        let s2 = scan(&mut p, "t2", 500.0);
        let x1 = p.add(PhysicalNode {
            op: PhysicalOp::Exchange {
                scheme: Partitioning::Hash {
                    columns: vec![0],
                    partitions: 8,
                },
            },
            children: vec![s1],
            stats: NodeStats::table(1000.0, 1000.0, 10.0),
            tuning: PhysicalTuning::IDENTITY,
        });
        let x2 = p.add(PhysicalNode {
            op: PhysicalOp::Exchange {
                scheme: Partitioning::Hash {
                    columns: vec![0],
                    partitions: 8,
                },
            },
            children: vec![s2],
            stats: NodeStats::table(500.0, 500.0, 10.0),
            tuning: PhysicalTuning::IDENTITY,
        });
        let j = p.add(PhysicalNode {
            op: PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
            },
            children: vec![x1, x2],
            stats: NodeStats::table(800.0, 800.0, 20.0),
            tuning: PhysicalTuning::IDENTITY,
        });
        let o = p.add(PhysicalNode {
            op: PhysicalOp::OutputExec { path: "out".into() },
            children: vec![j],
            stats: NodeStats::table(800.0, 800.0, 20.0),
            tuning: PhysicalTuning::IDENTITY,
        });
        p.mark_output(o);
        p
    }

    #[test]
    fn sample_validates() {
        sample().validate().expect("valid physical plan");
    }

    #[test]
    fn exchange_count_counts_boundaries() {
        assert_eq!(sample().exchange_count(), 2);
    }

    #[test]
    fn partitioning_partitions() {
        assert_eq!(
            Partitioning::Hash {
                columns: vec![0],
                partitions: 16
            }
            .partitions(),
            16
        );
        assert_eq!(Partitioning::Broadcast.partitions(), 1);
        assert_eq!(Partitioning::Gather.partitions(), 1);
    }

    #[test]
    fn tuning_identity_detection() {
        assert!(PhysicalTuning::IDENTITY.is_identity());
        let t = PhysicalTuning {
            cpu_mult: 1.1,
            ..PhysicalTuning::IDENTITY
        };
        assert!(!t.is_identity());
    }

    #[test]
    fn validate_rejects_join_arity() {
        let mut p = PhysicalPlan::new();
        let s = scan(&mut p, "t", 10.0);
        let j = p.add(PhysicalNode {
            op: PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                on: vec![],
            },
            children: vec![s],
            stats: NodeStats::default(),
            tuning: PhysicalTuning::IDENTITY,
        });
        let o = p.add(PhysicalNode {
            op: PhysicalOp::OutputExec { path: "o".into() },
            children: vec![j],
            stats: NodeStats::default(),
            tuning: PhysicalTuning::IDENTITY,
        });
        p.mark_output(o);
        let err = p.validate().unwrap_err();
        assert!(err.contains("children"), "{err}");
    }

    #[test]
    fn display_renders_tree() {
        let text = sample().to_string();
        assert!(text.contains("HashJoin"));
        assert!(text.contains("TableScan"));
        assert!(text.contains("-- output 0 --"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: PhysicalPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn fingerprint_memo_is_invisible_and_reset_on_mutation() {
        let p = sample();
        let pristine = sample();
        let fp = p.fingerprint();
        assert_eq!(fp, pristine.fingerprint(), "structurally equal plans agree");
        // The memo must not leak into equality, Debug, or serialization.
        assert_eq!(p, pristine);
        assert_eq!(format!("{p:?}"), format!("{pristine:?}"));
        assert_eq!(p.to_value(), pristine.to_value());
        // Clones carry the memo and agree.
        assert_eq!(p.clone().fingerprint(), fp);
        // A deserialized copy recomputes to the same value.
        let back = PhysicalPlan::from_value(&p.to_value()).unwrap();
        assert_eq!(back.fingerprint(), fp);
        // Mutation invalidates the memo.
        let mut q = p.clone();
        let extra = scan(&mut q, "zz", 7.0);
        q.mark_output(extra);
        assert_ne!(q.fingerprint(), fp);
    }

    #[test]
    fn fingerprint_sees_stats_and_tuning() {
        // Identical operator trees with different actual statistics or
        // tuning knobs execute differently, so they must not share a
        // fingerprint.
        let mut a = PhysicalPlan::new();
        let s = scan(&mut a, "t", 100.0);
        let o = a.add(PhysicalNode {
            op: PhysicalOp::OutputExec { path: "o".into() },
            children: vec![s],
            stats: NodeStats::table(100.0, 100.0, 10.0),
            tuning: PhysicalTuning::IDENTITY,
        });
        a.mark_output(o);
        let mut b = PhysicalPlan::new();
        let s = scan(&mut b, "t", 200.0);
        let o = b.add(PhysicalNode {
            op: PhysicalOp::OutputExec { path: "o".into() },
            children: vec![s],
            stats: NodeStats::table(100.0, 100.0, 10.0),
            tuning: PhysicalTuning::IDENTITY,
        });
        b.mark_output(o);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn stats_dual_semantics() {
        let s = NodeStats::table(100.0, 400.0, 8.0);
        assert!((s.rows.q_ratio() - 4.0).abs() < 1e-12);
        let _ = DualStats::exact(1.0);
    }
}

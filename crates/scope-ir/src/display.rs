//! Human-readable plan rendering: `EXPLAIN`-style trees with operator
//! details and statistics, used by examples, error messages, and tests.

use crate::logical::{LogicalOp, LogicalPlan};
use crate::physical::{PhysicalOp, PhysicalPlan};
use std::fmt::Write as _;

/// Render a logical plan as an indented multi-output tree with operator
/// details. Shared sub-DAG nodes are printed once per path (tree view), with
/// their arena ids so sharing remains visible.
#[must_use]
pub fn explain_logical(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    for (i, &root) in plan.outputs().iter().enumerate() {
        let _ = writeln!(out, "== output {i} ==");
        render_logical(plan, root, 0, &mut out);
    }
    out
}

fn render_logical(plan: &LogicalPlan, id: crate::NodeId, depth: usize, out: &mut String) {
    let node = plan.node(id);
    let detail = match &node.op {
        LogicalOp::Extract { table } => format!(
            "{} rows≈{:.0}/{:.0}",
            table.name, table.rows.actual, table.rows.estimated
        ),
        LogicalOp::Filter {
            predicate,
            selectivity,
        } => {
            format!(
                "{predicate} sel={:.3}/{:.3}",
                selectivity.actual, selectivity.estimated
            )
        }
        LogicalOp::Project { exprs } => format!("{} cols", exprs.len()),
        LogicalOp::Join {
            kind,
            on,
            selectivity,
        } => {
            format!(
                "{} on={on:?} sel={:.2e}",
                kind.name(),
                selectivity.estimated
            )
        }
        LogicalOp::Aggregate { group_by, aggs, .. } => {
            format!("by={group_by:?} aggs={}", aggs.len())
        }
        LogicalOp::Union => String::new(),
        LogicalOp::Sort { keys } => format!("{} keys", keys.len()),
        LogicalOp::Top { k, .. } => format!("k={k}"),
        LogicalOp::Window {
            partition_by,
            funcs,
        } => {
            format!("by={partition_by:?} funcs={}", funcs.len())
        }
        LogicalOp::Process {
            udf, cpu_factor, ..
        } => format!("{udf} cpu×{cpu_factor:.1}"),
        LogicalOp::Output { path } => path.to_string(),
    };
    let _ = writeln!(
        out,
        "{:indent$}{} [{}] {}",
        "",
        node.op.tag(),
        id,
        detail,
        indent = depth * 2
    );
    for &c in &node.children {
        render_logical(plan, c, depth + 1, out);
    }
}

/// Render a physical plan with stage-boundary markers, per-node estimated
/// rows, and any non-identity tuning knobs.
#[must_use]
pub fn explain_physical(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    for (i, &root) in plan.outputs().iter().enumerate() {
        let _ = writeln!(out, "== output {i} ==");
        render_physical(plan, root, 0, &mut out);
    }
    out
}

fn render_physical(plan: &PhysicalPlan, id: crate::NodeId, depth: usize, out: &mut String) {
    let node = plan.node(id);
    let detail = match &node.op {
        PhysicalOp::TableScan { table, variant } => format!("{table} ({variant:?})"),
        PhysicalOp::Exchange { scheme } => {
            format!(
                "{} p={} <== stage boundary",
                scheme.tag(),
                scheme.partitions()
            )
        }
        PhysicalOp::HashJoin { kind, .. }
        | PhysicalOp::MergeJoin { kind, .. }
        | PhysicalOp::BroadcastJoin { kind, .. } => kind.name().to_string(),
        PhysicalOp::HashAggregate { mode, .. } | PhysicalOp::StreamAggregate { mode, .. } => {
            format!("{mode:?}")
        }
        PhysicalOp::TopNExec { k, .. } => format!("k={k}"),
        PhysicalOp::OutputExec { path } => path.to_string(),
        _ => String::new(),
    };
    let tuning = if node.tuning.is_identity() {
        String::new()
    } else {
        format!(
            " tune(cpu×{:.2},io×{:.2},par×{:.2})",
            node.tuning.cpu_mult, node.tuning.io_mult, node.tuning.parallelism_mult
        )
    };
    let _ = writeln!(
        out,
        "{:indent$}{} [{}] {} rows≈{:.0}{}",
        "",
        node.op.tag(),
        id,
        detail,
        node.stats.rows.estimated,
        tuning,
        indent = depth * 2
    );
    for &c in &node.children {
        render_physical(plan, c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::logical::{LogicalOp, LogicalPlan, TableRef};
    use crate::schema::{Column, DataType, Schema};
    use crate::stats::DualStats;

    #[test]
    fn explain_logical_mentions_operators_and_stats() {
        let mut p = LogicalPlan::new();
        let t = TableRef::new(
            "clicks",
            Schema::new(vec![Column::new("a", DataType::Int)]),
            DualStats::new(1000.0, 1500.0),
        );
        let s = p.add(LogicalOp::Extract { table: t }, vec![]);
        let f = p.add(
            LogicalOp::Filter {
                predicate: ScalarExpr::binary(
                    crate::expr::BinOp::Gt,
                    ScalarExpr::col(0),
                    ScalarExpr::lit_int(3),
                ),
                selectivity: DualStats::new(0.2, 0.33),
            },
            vec![s],
        );
        p.add_output("result", f);
        let text = explain_logical(&p);
        assert!(text.contains("clicks"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("sel=0.200/0.330"), "{text}");
        assert!(text.contains("== output 0 =="), "{text}");
    }
}

//! Dual statistics: the ground truth the simulator executes against, and the
//! catalog estimates the optimizer costs against.
//!
//! The paper's central operational difficulty is that "estimated query costs
//! do not necessarily lead to better plans due to inaccurate cost models"
//! (§1, §5.2). We reproduce that by carrying *both* values everywhere: every
//! dataset has a true row count (used by `scope-runtime` to derive bytes
//! read/written and CPU work) and an estimated row count (used by
//! `scope-opt`'s cost model). The two diverge through (a) stale catalog
//! cardinalities on base tables and (b) heuristic vs. true selectivities on
//! predicates.

use serde::{Deserialize, Serialize};

/// A pair of (true, estimated) values for one statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualStats {
    /// Ground truth, visible only to the execution simulator.
    pub actual: f64,
    /// Catalog/heuristic estimate, visible to the optimizer.
    pub estimated: f64,
}

impl DualStats {
    #[must_use]
    pub fn exact(v: f64) -> Self {
        Self {
            actual: v,
            estimated: v,
        }
    }

    #[must_use]
    pub fn new(actual: f64, estimated: f64) -> Self {
        Self { actual, estimated }
    }

    /// Relative estimation error `est/actual` (q-error direction preserved).
    #[must_use]
    pub fn q_ratio(&self) -> f64 {
        if self.actual <= 0.0 {
            return 1.0;
        }
        self.estimated / self.actual
    }

    #[must_use]
    pub fn scale(&self, true_factor: f64, est_factor: f64) -> Self {
        Self {
            actual: self.actual * true_factor,
            estimated: self.estimated * est_factor,
        }
    }
}

/// Per-node statistics attached to optimized plan nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Output rows (true and estimated).
    pub rows: DualStats,
    /// Average output row length in bytes.
    pub avg_row_len: f64,
    /// Number of distinct grouping values, when meaningful.
    pub distinct: DualStats,
}

impl NodeStats {
    #[must_use]
    pub fn new(rows: DualStats, avg_row_len: f64, distinct: DualStats) -> Self {
        Self {
            rows,
            avg_row_len,
            distinct,
        }
    }

    /// Stats for a base table with possibly stale catalog cardinality.
    #[must_use]
    pub fn table(actual_rows: f64, estimated_rows: f64, avg_row_len: f64) -> Self {
        let distinct = DualStats::new(
            (actual_rows / 10.0).max(1.0),
            (estimated_rows / 10.0).max(1.0),
        );
        Self {
            rows: DualStats::new(actual_rows, estimated_rows),
            avg_row_len,
            distinct,
        }
    }

    /// Total output bytes, ground truth.
    #[must_use]
    pub fn actual_bytes(&self) -> f64 {
        self.rows.actual * self.avg_row_len
    }

    /// Total output bytes as the optimizer estimates them.
    #[must_use]
    pub fn estimated_bytes(&self) -> f64 {
        self.rows.estimated * self.avg_row_len
    }

    /// Apply a filter with separate true/estimated selectivities.
    #[must_use]
    pub fn filter(&self, actual_sel: f64, estimated_sel: f64) -> Self {
        Self {
            rows: self
                .rows
                .scale(actual_sel.clamp(0.0, 1.0), estimated_sel.clamp(0.0, 1.0)),
            avg_row_len: self.avg_row_len,
            distinct: self.distinct.scale(
                actual_sel.sqrt().clamp(0.0, 1.0),
                estimated_sel.sqrt().clamp(0.0, 1.0),
            ),
        }
    }
}

impl Default for NodeStats {
    fn default() -> Self {
        Self {
            rows: DualStats::exact(0.0),
            avg_row_len: 1.0,
            distinct: DualStats::exact(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_ratio_measures_misestimation() {
        let d = DualStats::new(100.0, 1000.0);
        assert!((d.q_ratio() - 10.0).abs() < 1e-12);
        assert!((DualStats::exact(5.0).q_ratio() - 1.0).abs() < 1e-12);
        // Zero actual rows degrades gracefully.
        assert!((DualStats::new(0.0, 10.0).q_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filter_scales_both_sides_independently() {
        let s = NodeStats::table(1000.0, 2000.0, 10.0);
        let f = s.filter(0.5, 0.1);
        assert!((f.rows.actual - 500.0).abs() < 1e-9);
        assert!((f.rows.estimated - 200.0).abs() < 1e-9);
        // Row length unchanged by filtering.
        assert!((f.avg_row_len - 10.0).abs() < 1e-12);
    }

    #[test]
    fn filter_clamps_selectivity() {
        let s = NodeStats::table(1000.0, 1000.0, 10.0);
        let f = s.filter(1.7, -0.5);
        assert!((f.rows.actual - 1000.0).abs() < 1e-9);
        assert!(f.rows.estimated.abs() < 1e-9);
    }

    #[test]
    fn bytes_track_rows_times_len() {
        let s = NodeStats::table(100.0, 50.0, 8.0);
        assert!((s.actual_bytes() - 800.0).abs() < 1e-9);
        assert!((s.estimated_bytes() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_shrinks_sublinearly_under_filter() {
        let s = NodeStats::table(10_000.0, 10_000.0, 8.0);
        let f = s.filter(0.25, 0.25);
        // sqrt(0.25) = 0.5 of the distinct values survive.
        assert!((f.distinct.actual - s.distinct.actual * 0.5).abs() < 1e-9);
    }
}

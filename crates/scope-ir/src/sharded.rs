//! Generic lock-sharded FIFO cache.
//!
//! Four caches in this workspace share one shape: N `parking_lot::RwLock`
//! shards selected by a stable hash of the key, a per-shard slice of the
//! total capacity, first-writer-wins inserts (the cached computations are
//! deterministic, so concurrent writers hold identical values), FIFO
//! eviction in insertion order, and per-shard eviction counters so skewed
//! key distributions stay visible (one hot shard churning at capacity used
//! to look identical to uniform pressure when the counter was cache-wide).
//! [`ShardedCache`] is that shape extracted once; the compile-result cache
//! (`scope_opt::CompileCache`), both maps of the execution-result cache
//! (`scope_runtime::ExecutionCache`), the delta compiler's base-memo cache,
//! and the span-feature cache all build on it.
//!
//! Hit/miss accounting stays with the callers: each wrapper counts lookups
//! in its own atomics (some count a `get` miss, some count a whole
//! get-or-compute), so the helper only owns what is intrinsically per-shard
//! — the entries, the FIFO order, and the eviction counters.

use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::hash::Hash;

#[derive(Debug)]
struct Shard<K, V> {
    map: FxHashMap<K, V>,
    /// Insertion order, for FIFO eviction once the shard is full.
    order: VecDeque<K>,
    /// Evictions performed by *this* shard. Eviction is a per-shard event
    /// (each shard enforces its own slice of the capacity), so the counter
    /// lives under the shard lock; [`ShardedCache::evictions`] sums these
    /// and [`ShardedCache::shard_evictions`] exposes the attribution.
    evictions: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Self {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            evictions: 0,
        }
    }
}

/// A lock-sharded map with FIFO eviction. `&ShardedCache` is `Sync` (given
/// `Send + Sync` contents): parallel pipeline fan-outs hit it concurrently,
/// readers sharing each shard lock.
///
/// The shard for a key is picked by a caller-supplied `fn(&K) -> u64` (a
/// plain function pointer: every key type in the workspace already has a
/// stable hash built from `mix64` and content fingerprints, and a stored
/// pointer sidesteps the coherence issues a hashing trait would hit on
/// foreign tuple keys).
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[RwLock<Shard<K, V>>]>,
    /// Per-shard entry cap derived from the total capacity.
    shard_capacity: usize,
    hasher: fn(&K) -> u64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache holding at most `capacity` entries (`0` = unbounded) across
    /// `shards` lock shards (rounded up to a power of two, clamped to
    /// 1..=1024), sharded by `hasher`.
    #[must_use]
    pub fn new(capacity: usize, shards: usize, hasher: fn(&K) -> u64) -> Self {
        let shards = shards.clamp(1, 1024).next_power_of_two();
        let shard_capacity = if capacity == 0 {
            usize::MAX
        } else {
            capacity.div_ceil(shards).max(1)
        };
        Self {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            shard_capacity,
            hasher,
        }
    }

    fn shard_for(&self, key: &K) -> &RwLock<Shard<K, V>> {
        let h = (self.hasher)(key);
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    /// A clone of the stored value, if present. (Values are cheap clones
    /// everywhere this is used: `Arc`s, `Copy` metric structs, or shared
    /// compile results.)
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).read().map.get(key).cloned()
    }

    /// Insert `value` unless the key is already present: a concurrent writer
    /// may have inserted while the caller computed, both hold the identical
    /// value (the cached computations are deterministic), so first writer
    /// wins and the duplicate work is only a perf loss. Returns whether this
    /// call inserted, evicting oldest-first if the shard's capacity slice
    /// overflowed.
    pub fn insert(&self, key: K, value: V) -> bool {
        let shard = self.shard_for(&key);
        let mut guard = shard.write();
        let std::collections::hash_map::Entry::Vacant(slot) = guard.map.entry(key.clone()) else {
            return false;
        };
        slot.insert(value);
        guard.order.push_back(key);
        while guard.map.len() > self.shard_capacity {
            let Some(oldest) = guard.order.pop_front() else {
                break;
            };
            guard.map.remove(&oldest);
            guard.evictions += 1;
        }
        true
    }

    /// Total evictions across all shards.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.read().evictions).sum()
    }

    /// Evictions attributed to each shard, in shard order. Capacity is
    /// enforced per shard, so skewed key distributions show up here as one
    /// shard churning while the rest idle.
    #[must_use]
    pub fn shard_evictions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.read().evictions).collect()
    }

    /// Live entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (eviction counters keep running).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut guard = shard.write();
            guard.map.clear();
            guard.order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::mix64;

    fn cache(capacity: usize, shards: usize) -> ShardedCache<u64, u64> {
        ShardedCache::new(capacity, shards, |k| mix64(*k, 0))
    }

    #[test]
    fn get_insert_roundtrip_and_first_writer_wins() {
        let c = cache(16, 4);
        assert_eq!(c.get(&1), None);
        assert!(c.insert(1, 10));
        assert_eq!(c.get(&1), Some(10));
        assert!(!c.insert(1, 99), "duplicate insert must not overwrite");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn single_shard_evicts_fifo() {
        let c = cache(2, 1);
        for k in 0..3 {
            assert!(c.insert(k, k));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&0), None, "oldest entry evicted first");
        assert_eq!(c.get(&2), Some(2), "newest entry survives");
    }

    #[test]
    fn evictions_attributed_per_shard() {
        // Shard by identity so keys land deterministically: capacity 4 over
        // 4 shards = 1 entry each; keys 0..8 put two keys in every shard.
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 4, |k| *k);
        for k in 0..8 {
            assert!(c.insert(k, k));
        }
        let per_shard = c.shard_evictions();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard, vec![1, 1, 1, 1]);
        assert_eq!(c.evictions(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let c = cache(0, 2);
        for k in 0..1000 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn shard_count_clamps_to_power_of_two() {
        // 3 shards round up to 4; capacity 8 divides into 2 per shard.
        let c: ShardedCache<u64, u64> = ShardedCache::new(8, 3, |k| *k);
        assert_eq!(c.shards.len(), 4);
        assert_eq!(c.shard_capacity, 2);
        // 0 shards clamp to 1.
        let c = cache(8, 0);
        assert_eq!(c.shards.len(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_eviction_counters() {
        let c = cache(1, 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1, "counters are monotonic across clears");
    }
}

//! Recursive-descent parser for the SCOPE-like script language.

use crate::ast::{
    AstBinOp, ColumnRef, Expr, JoinClause, OrderKey, Script, SelectItem, SelectStmt, Statement,
    TableAlias, WindowFunc,
};
use crate::error::{LangError, Span};
use crate::lexer::{tokenize, Spanned, Token};
use scope_ir::schema::DataType;

/// Parse a script source into an AST.
pub fn parse_script(src: &str) -> Result<Script, LangError> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.script()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

const AGG_FUNCS: &[&str] = &["COUNT", "SUM", "MIN", "MAX", "AVG"];

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), LangError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.span(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(LangError::parse(
                self.span(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Token::StrLit(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(LangError::parse(
                self.span(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn script(&mut self) -> Result<Script, LangError> {
        let mut statements = Vec::new();
        while self.peek() != &Token::Eof {
            statements.push(self.statement()?);
        }
        Ok(Script { statements })
    }

    fn statement(&mut self) -> Result<Statement, LangError> {
        if self.eat(&Token::Output) {
            let input = self.ident("dataset name")?;
            self.expect(&Token::To, "TO")?;
            let path = self.string("output path")?;
            self.expect(&Token::Semicolon, ";")?;
            return Ok(Statement::Output { input, path });
        }
        let name = self.ident("statement name")?;
        self.expect(&Token::Eq, "=")?;
        let stmt = match self.peek() {
            Token::Extract => {
                self.bump();
                self.extract(name)?
            }
            Token::Select => {
                self.bump();
                let query = self.select()?;
                Statement::Select { name, query }
            }
            Token::Process => {
                self.bump();
                let input = self.ident("input dataset")?;
                self.expect(&Token::Using, "USING")?;
                let udf = self.ident("processor name")?;
                Statement::Process { name, input, udf }
            }
            Token::Window => {
                self.bump();
                let input = self.ident("input dataset")?;
                self.expect(&Token::Partition, "PARTITION")?;
                self.expect(&Token::By, "BY")?;
                let mut partition_by = vec![self.column_ref()?];
                while self.eat(&Token::Comma) {
                    partition_by.push(self.column_ref()?);
                }
                self.expect(&Token::Aggregate, "AGGREGATE")?;
                let mut funcs = vec![self.window_func()?];
                while self.eat(&Token::Comma) {
                    funcs.push(self.window_func()?);
                }
                Statement::Window {
                    name,
                    input,
                    partition_by,
                    funcs,
                }
            }
            Token::Union => {
                self.bump();
                let mut inputs = vec![self.ident("dataset name")?];
                while self.eat(&Token::Comma) {
                    inputs.push(self.ident("dataset name")?);
                }
                if inputs.len() < 2 {
                    return Err(LangError::parse(
                        self.span(),
                        "UNION needs at least 2 inputs",
                    ));
                }
                Statement::Union { name, inputs }
            }
            other => {
                return Err(LangError::parse(
                    self.span(),
                    format!("expected EXTRACT/SELECT/PROCESS/UNION, found {other:?}"),
                ));
            }
        };
        self.expect(&Token::Semicolon, ";")?;
        Ok(stmt)
    }

    fn extract(&mut self, name: String) -> Result<Statement, LangError> {
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(&Token::Colon, ":")?;
            let ty_name = self.ident("type name")?;
            let ty = match ty_name.to_ascii_lowercase().as_str() {
                "int" | "long" => DataType::Int,
                "float" | "double" => DataType::Float,
                "bool" => DataType::Bool,
                "string" => DataType::String { avg_len: 24 },
                "datetime" => DataType::DateTime,
                other => {
                    return Err(LangError::parse(
                        self.span(),
                        format!("unknown type {other}"),
                    ));
                }
            };
            columns.push((col, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::From, "FROM")?;
        let path = self.string("input path")?;
        let extractor = if self.eat(&Token::Using) {
            Some(self.ident("extractor name")?)
        } else {
            None
        };
        Ok(Statement::Extract {
            name,
            columns,
            path,
            extractor,
        })
    }

    fn select(&mut self) -> Result<SelectStmt, LangError> {
        let top = if self.eat(&Token::Top) {
            match self.bump() {
                Token::IntLit(v) if v > 0 => Some(v as u64),
                other => {
                    return Err(LangError::parse(
                        self.span(),
                        format!("expected positive TOP count, found {other:?}"),
                    ));
                }
            }
        } else {
            None
        };
        let items = self.select_items()?;
        self.expect(&Token::From, "FROM")?;
        let from = self.table_alias()?;
        let mut joins = Vec::new();
        while self.eat(&Token::Join) {
            let table = self.table_alias()?;
            self.expect(&Token::On, "ON")?;
            let mut on = vec![self.join_condition()?];
            while self.eat(&Token::And) {
                on.push(self.join_condition()?);
            }
            joins.push(JoinClause { table, on });
        }
        let predicate = if self.eat(&Token::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat(&Token::Group) {
            self.expect(&Token::By, "BY")?;
            group_by.push(self.column_ref()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat(&Token::Order) {
            self.expect(&Token::By, "BY")?;
            loop {
                let column = self.column_ref()?;
                let descending = if self.eat(&Token::Desc) {
                    true
                } else {
                    self.eat(&Token::Asc);
                    false
                };
                order_by.push(OrderKey { column, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if top.is_some() && order_by.is_empty() {
            return Err(LangError::parse(
                self.span(),
                "SELECT TOP requires ORDER BY",
            ));
        }
        Ok(SelectStmt {
            top,
            items,
            from,
            joins,
            predicate,
            group_by,
            order_by,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, LangError> {
        if self.eat(&Token::Star) {
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, LangError> {
        // Aggregate call?
        if let Token::Ident(name) = self.peek().clone() {
            let upper = name.to_ascii_uppercase();
            if AGG_FUNCS.contains(&upper.as_str())
                && self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen)
            {
                self.bump(); // func name
                self.bump(); // (
                let distinct = self.eat(&Token::Distinct);
                let column = if self.eat(&Token::Star) {
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect(&Token::RParen, ")")?;
                self.expect(&Token::As, "AS (aggregates must be aliased)")?;
                let alias = self.ident("alias")?;
                return Ok(SelectItem::Agg {
                    func: upper,
                    distinct,
                    column,
                    alias,
                });
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat(&Token::As) {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn window_func(&mut self) -> Result<WindowFunc, LangError> {
        let func = self.ident("aggregate function")?.to_ascii_uppercase();
        if !AGG_FUNCS.contains(&func.as_str()) {
            return Err(LangError::parse(
                self.span(),
                format!("unknown aggregate {func}"),
            ));
        }
        self.expect(&Token::LParen, "(")?;
        let column = if self.eat(&Token::Star) {
            None
        } else {
            Some(self.column_ref()?)
        };
        self.expect(&Token::RParen, ")")?;
        self.expect(&Token::As, "AS (window aggregates must be aliased)")?;
        let alias = self.ident("alias")?;
        Ok(WindowFunc {
            func,
            column,
            alias,
        })
    }

    fn table_alias(&mut self) -> Result<TableAlias, LangError> {
        let name = self.ident("dataset name")?;
        let alias = if self.eat(&Token::As) {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(TableAlias { name, alias })
    }

    fn join_condition(&mut self) -> Result<(ColumnRef, ColumnRef), LangError> {
        let l = self.column_ref()?;
        self.expect(&Token::EqEq, "==")?;
        let r = self.column_ref()?;
        Ok((l, r))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, LangError> {
        let first = self.ident("column name")?;
        if self.eat(&Token::Dot) {
            let second = self.ident("column name")?;
            Ok(ColumnRef::qualified(first, second))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut left = self.and_expr()?;
        while self.eat(&Token::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: AstBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut left = self.cmp_expr()?;
        while self.eat(&Token::And) {
            let right = self.cmp_expr()?;
            left = Expr::Binary {
                op: AstBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Token::EqEq => AstBinOp::Eq,
            Token::Ne => AstBinOp::Ne,
            Token::Lt => AstBinOp::Lt,
            Token::Le => AstBinOp::Le,
            Token::Gt => AstBinOp::Gt,
            Token::Ge => AstBinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => AstBinOp::Add,
                Token::Minus => AstBinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Token::Star => AstBinOp::Mul,
                Token::Slash => AstBinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.atom()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Token::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Token::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            Token::StrLit(s) => {
                self.bump();
                Ok(Expr::StrLit(s))
            }
            Token::Ident(_) => Ok(Expr::Column(self.column_ref()?)),
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, ")")?;
                Ok(e)
            }
            other => Err(LangError::parse(
                self.span(),
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_extract() {
        let s = parse_script(r#"d = EXTRACT a:int, b:string FROM "p" USING Tsv;"#).unwrap();
        match &s.statements[0] {
            Statement::Extract {
                name,
                columns,
                path,
                extractor,
            } => {
                assert_eq!(name, "d");
                assert_eq!(columns.len(), 2);
                assert_eq!(path, "p");
                assert_eq!(extractor.as_deref(), Some("Tsv"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let src = r#"
            r = SELECT TOP 10 a, SUM(b) AS t FROM d AS x
                JOIN e ON x.a == e.a
                WHERE a > 3 AND b != 0
                GROUP BY a
                ORDER BY t DESC;
        "#;
        let s = parse_script(src).unwrap();
        match &s.statements[0] {
            Statement::Select { query, .. } => {
                assert_eq!(query.top, Some(10));
                assert_eq!(query.items.len(), 2);
                assert_eq!(query.joins.len(), 1);
                assert!(query.predicate.is_some());
                assert_eq!(query.group_by.len(), 1);
                assert_eq!(query.order_by.len(), 1);
                assert!(query.order_by[0].descending);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn top_without_order_by_is_rejected() {
        let err = parse_script("r = SELECT TOP 5 * FROM d;").unwrap_err();
        assert!(err.to_string().contains("ORDER BY"), "{err}");
    }

    #[test]
    fn parses_union_and_process_and_output() {
        let src = r#"
            u = UNION a, b, c;
            p = PROCESS u USING Cleanse;
            OUTPUT p TO "out";
        "#;
        let s = parse_script(src).unwrap();
        assert_eq!(s.statements.len(), 3);
        assert!(matches!(&s.statements[0], Statement::Union { inputs, .. } if inputs.len() == 3));
        assert!(matches!(&s.statements[1], Statement::Process { udf, .. } if udf == "Cleanse"));
        assert!(matches!(&s.statements[2], Statement::Output { path, .. } if path == "out"));
    }

    #[test]
    fn expression_precedence_and_over_or() {
        let s = parse_script("r = SELECT * FROM d WHERE a == 1 OR b == 2 AND c == 3;").unwrap();
        let Statement::Select { query, .. } = &s.statements[0] else {
            panic!()
        };
        let Some(Expr::Binary { op, .. }) = &query.predicate else {
            panic!()
        };
        assert_eq!(*op, AstBinOp::Or);
    }

    #[test]
    fn arithmetic_precedence_mul_over_add() {
        let s = parse_script("r = SELECT a + b * 2 AS v FROM d;").unwrap();
        let Statement::Select { query, .. } = &s.statements[0] else {
            panic!()
        };
        let SelectItem::Expr {
            expr: Expr::Binary { op, .. },
            ..
        } = &query.items[0]
        else {
            panic!()
        };
        assert_eq!(*op, AstBinOp::Add);
    }

    #[test]
    fn count_distinct_parses() {
        let s = parse_script("r = SELECT COUNT(DISTINCT u) AS n FROM d GROUP BY g;").unwrap();
        let Statement::Select { query, .. } = &s.statements[0] else {
            panic!()
        };
        assert!(matches!(
            &query.items[0],
            SelectItem::Agg { distinct: true, .. }
        ));
    }

    #[test]
    fn unknown_statement_kind_errors() {
        let err = parse_script("x = FROB a;").unwrap_err();
        assert!(err.to_string().contains("expected EXTRACT"), "{err}");
    }

    #[test]
    fn missing_semicolon_errors() {
        let err = parse_script(r#"d = EXTRACT a:int FROM "p""#).unwrap_err();
        assert!(err.to_string().contains(';'), "{err}");
    }
}

//! A SCOPE-like scripting language front-end.
//!
//! SCOPE scripts are "composed as a data flow of one or more SQL statements
//! that are stitched together into a single DAG by the SCOPE compiler"
//! (paper §2.1). This crate implements that front-end for the reproduction:
//!
//! * [`lexer`] — tokenizer with line/column tracking;
//! * [`ast`] — named-column abstract syntax;
//! * [`parser`] — recursive-descent parser;
//! * [`binder`] — name resolution and lowering to [`scope_ir::LogicalPlan`]
//!   DAGs (re-using a bound statement shares its sub-plan, which is how
//!   multi-output jobs become DAGs rather than trees).
//!
//! # Example
//!
//! ```
//! use scope_lang::{bind_script, Catalog};
//!
//! let script = r#"
//!     data = EXTRACT user:int, item:int, spend:float FROM "store/sales";
//!     big  = SELECT user, spend FROM data WHERE spend > 100;
//!     agg  = SELECT user, SUM(spend) AS total FROM big GROUP BY user;
//!     OUTPUT agg TO "out/totals";
//!     OUTPUT big TO "out/big";
//! "#;
//! let plan = bind_script(script, &Catalog::default()).unwrap();
//! assert_eq!(plan.outputs().len(), 2);
//! plan.validate().unwrap();
//! ```

pub mod ast;
pub mod binder;
pub mod error;
pub mod lexer;
pub mod parser;

pub use binder::{bind_script, Binder, Catalog, TableInfo};
pub use error::{LangError, Span};
pub use parser::parse_script;

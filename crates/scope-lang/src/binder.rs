//! Name resolution and lowering from AST to [`scope_ir::LogicalPlan`].
//!
//! Each bound statement registers its root node in a symbol table; statements
//! that reference the same upstream dataset *share* its sub-plan in the arena,
//! which is exactly how SCOPE scripts become operator DAGs with multiple
//! output trees over common sub-expressions.

use crate::ast::{AstBinOp, ColumnRef, Expr, Script, SelectItem, SelectStmt, Statement};
use crate::error::{LangError, Span};
use crate::parser::parse_script;
use rustc_hash::FxHashMap;
use scope_ir::expr::{AggExpr, AggFunc, BinOp, ScalarExpr, Value};
use scope_ir::ids::stable_hash64;
use scope_ir::logical::{JoinKind, LogicalOp, LogicalPlan, SortKey, TableRef};
use scope_ir::schema::{Column, Schema};
use scope_ir::stats::DualStats;
use scope_ir::NodeId;

/// Catalog information for one base dataset.
#[derive(Debug, Clone, Copy)]
pub struct TableInfo {
    /// True and catalog-estimated row counts.
    pub rows: DualStats,
}

/// Catalog consulted while binding `EXTRACT` statements and predicates.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: FxHashMap<String, TableInfo>,
    /// Row count assumed for paths missing from the catalog.
    pub default_rows: DualStats,
    /// When true, the *actual* selectivity of each filter is perturbed
    /// deterministically (hash of the normalized predicate) away from the
    /// optimizer's heuristic estimate, reproducing realistic cost-model error
    /// for script-derived plans.
    pub realistic_selectivity: bool,
}

impl Default for Catalog {
    fn default() -> Self {
        Self {
            tables: FxHashMap::default(),
            default_rows: DualStats::exact(1_000_000.0),
            realistic_selectivity: true,
        }
    }
}

impl Catalog {
    /// Register a base dataset.
    pub fn register(&mut self, path: impl Into<String>, info: TableInfo) -> &mut Self {
        self.tables.insert(path.into(), info);
        self
    }

    #[must_use]
    pub fn lookup(&self, path: &str) -> TableInfo {
        self.tables.get(path).copied().unwrap_or(TableInfo {
            rows: self.default_rows,
        })
    }

    /// Dual selectivity for a predicate: estimate comes from the textbook
    /// heuristic; truth is the heuristic scaled by a deterministic
    /// per-predicate factor in [0.25, 2.5] when `realistic_selectivity`.
    #[must_use]
    pub fn filter_selectivity(&self, predicate: &ScalarExpr) -> DualStats {
        let est = predicate.heuristic_selectivity();
        if !self.realistic_selectivity {
            return DualStats::exact(est);
        }
        let mut norm = String::new();
        predicate.normalized(&mut norm);
        let h = stable_hash64(norm.as_bytes());
        // Map hash to a log-uniform factor in [0.25, 2.5].
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 0.25 * (10.0f64).powf(unit); // 0.25 .. 2.5
        DualStats::new((est * factor).clamp(1e-6, 1.0), est)
    }
}

/// Bind a script source all the way to a validated logical plan.
pub fn bind_script(src: &str, catalog: &Catalog) -> Result<LogicalPlan, LangError> {
    let script = parse_script(src)?;
    Binder::new(catalog).bind(&script)
}

/// Statement-by-statement binder.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    plan: LogicalPlan,
    /// dataset name -> (plan node, output schema)
    symbols: FxHashMap<String, (NodeId, Schema)>,
}

/// Column-resolution scope: concatenated schemas of the FROM table and every
/// joined table, each tagged with its alias.
struct Scope {
    entries: Vec<(String, Schema)>,
}

impl Scope {
    fn width(&self) -> usize {
        self.entries.iter().map(|(_, s)| s.len()).sum()
    }

    fn schema(&self) -> Schema {
        let mut cols: Vec<Column> = Vec::with_capacity(self.width());
        for (_, s) in &self.entries {
            cols.extend_from_slice(s.columns());
        }
        Schema::new(cols)
    }

    /// Resolve a column reference to a flat index into the concatenated
    /// schema. Unqualified names must be unambiguous.
    fn resolve(&self, col: &ColumnRef, span: Span) -> Result<usize, LangError> {
        let mut offset = 0usize;
        let mut found: Option<usize> = None;
        for (alias, schema) in &self.entries {
            if let Some(q) = &col.qualifier {
                if q != alias {
                    offset += schema.len();
                    continue;
                }
            }
            if let Some(i) = schema.index_of(&col.name) {
                if found.is_some() {
                    return Err(LangError::bind(span, format!("ambiguous column {col}")));
                }
                found = Some(offset + i);
                if col.qualifier.is_some() {
                    break;
                }
            }
            offset += schema.len();
        }
        found.ok_or_else(|| LangError::bind(span, format!("unknown column {col}")))
    }
}

impl<'a> Binder<'a> {
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            plan: LogicalPlan::new(),
            symbols: FxHashMap::default(),
        }
    }

    /// Bind a parsed script into a logical plan.
    pub fn bind(mut self, script: &Script) -> Result<LogicalPlan, LangError> {
        let span = Span::default();
        for stmt in &script.statements {
            if let Some(name) = stmt.defines() {
                if self.symbols.contains_key(name) {
                    return Err(LangError::bind(span, format!("duplicate dataset {name}")));
                }
            }
            match stmt {
                Statement::Extract {
                    name,
                    columns,
                    path,
                    ..
                } => {
                    let schema = Schema::new(
                        columns
                            .iter()
                            .map(|(n, t)| Column::new(n.clone(), *t))
                            .collect(),
                    );
                    let info = self.catalog.lookup(path);
                    let table = TableRef::new(path.clone(), schema.clone(), info.rows);
                    let node = self.plan.add(LogicalOp::Extract { table }, vec![]);
                    self.symbols.insert(name.clone(), (node, schema));
                }
                Statement::Select { name, query } => {
                    let (node, schema) = self.bind_select(query, span)?;
                    self.symbols.insert(name.clone(), (node, schema));
                }
                Statement::Process { name, input, udf } => {
                    let (child, schema) = self.dataset(input, span)?;
                    // Deterministic per-UDF CPU factor in [1, 8]; opaque user
                    // code is the dominant CPU consumer in SCOPE jobs.
                    let h = stable_hash64(udf.as_bytes());
                    let cpu_factor = 1.0 + (h % 700) as f64 / 100.0;
                    let node = self.plan.add(
                        LogicalOp::Process {
                            udf: udf.clone().into(),
                            cpu_factor,
                            out_ratio: DualStats::exact(1.0),
                        },
                        vec![child],
                    );
                    self.symbols.insert(name.clone(), (node, schema));
                }
                Statement::Window {
                    name,
                    input,
                    partition_by,
                    funcs,
                } => {
                    let (child, input_schema) = self.dataset(input, span)?;
                    let scope = Scope {
                        entries: vec![(String::new(), input_schema.clone())],
                    };
                    let mut cols = Vec::with_capacity(partition_by.len());
                    for c in partition_by {
                        cols.push(scope.resolve(c, span)?);
                    }
                    let mut lowered = Vec::with_capacity(funcs.len());
                    for f in funcs {
                        let input_col = match &f.column {
                            Some(c) => Some(scope.resolve(c, span)?),
                            None => None,
                        };
                        let func = match f.func.as_str() {
                            "COUNT" => AggFunc::Count,
                            "SUM" => AggFunc::Sum,
                            "MIN" => AggFunc::Min,
                            "MAX" => AggFunc::Max,
                            "AVG" => AggFunc::Avg,
                            other => {
                                return Err(LangError::bind(
                                    span,
                                    format!("unknown window aggregate {other}"),
                                ));
                            }
                        };
                        lowered.push(AggExpr::new(func, input_col, f.alias.clone()));
                    }
                    // Window output = input columns plus one per function.
                    let mut out_cols = input_schema.columns().to_vec();
                    out_cols.extend(
                        lowered.iter().map(|a| {
                            Column::new(a.alias.clone(), scope_ir::schema::DataType::Float)
                        }),
                    );
                    let node = self.plan.add(
                        LogicalOp::Window {
                            partition_by: cols,
                            funcs: lowered,
                        },
                        vec![child],
                    );
                    self.symbols
                        .insert(name.clone(), (node, Schema::new(out_cols)));
                }
                Statement::Union { name, inputs } => {
                    let mut children = Vec::with_capacity(inputs.len());
                    let mut schema: Option<Schema> = None;
                    for input in inputs {
                        let (node, s) = self.dataset(input, span)?;
                        if let Some(first) = &schema {
                            if first.len() != s.len() {
                                return Err(LangError::bind(
                                    span,
                                    format!(
                                        "UNION width mismatch: {} vs {} columns",
                                        first.len(),
                                        s.len()
                                    ),
                                ));
                            }
                        } else {
                            schema = Some(s);
                        }
                        children.push(node);
                    }
                    let node = self.plan.add(LogicalOp::Union, children);
                    self.symbols
                        .insert(name.clone(), (node, schema.expect("n>=2")));
                }
                Statement::Output { input, path } => {
                    let (child, _) = self.dataset(input, span)?;
                    self.plan.add_output(path.clone(), child);
                }
            }
        }
        if self.plan.outputs().is_empty() {
            return Err(LangError::bind(span, "script has no OUTPUT statement"));
        }
        debug_assert!(self.plan.validate().is_ok(), "binder produced invalid plan");
        Ok(self.plan)
    }

    fn dataset(&self, name: &str, span: Span) -> Result<(NodeId, Schema), LangError> {
        self.symbols
            .get(name)
            .cloned()
            .ok_or_else(|| LangError::bind(span, format!("unknown dataset {name}")))
    }

    fn bind_select(
        &mut self,
        query: &SelectStmt,
        span: Span,
    ) -> Result<(NodeId, Schema), LangError> {
        // FROM + JOINs build the scope.
        let (mut node, from_schema) = self.dataset(&query.from.name, span)?;
        let mut scope = Scope {
            entries: vec![(query.from.effective_alias().to_string(), from_schema)],
        };
        for join in &query.joins {
            let (right, right_schema) = self.dataset(&join.table.name, span)?;
            let right_scope = Scope {
                entries: vec![(
                    join.table.effective_alias().to_string(),
                    right_schema.clone(),
                )],
            };
            let mut on = Vec::with_capacity(join.on.len());
            for (l, r) in &join.on {
                // Either side of the condition may name either input.
                let (li, ri) = match (scope.resolve(l, span), right_scope.resolve(r, span)) {
                    (Ok(li), Ok(ri)) => (li, ri),
                    _ => {
                        let li = scope.resolve(r, span)?;
                        let ri = right_scope.resolve(l, span)?;
                        (li, ri)
                    }
                };
                on.push((li, ri));
            }
            // Join selectivity: textbook 1/max(distinct) is unavailable at
            // bind time, use a key-join default with deterministic truth
            // perturbation (same mechanism as filters).
            let est = 0.001;
            let sel = if self.catalog.realistic_selectivity {
                let h = stable_hash64(
                    format!("{}|{}|{on:?}", query.from.name, join.table.name).as_bytes(),
                );
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                DualStats::new((est * 0.25 * 10.0f64.powf(unit)).clamp(1e-9, 1.0), est)
            } else {
                DualStats::exact(est)
            };
            node = self.plan.add(
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    on,
                    selectivity: sel,
                },
                vec![node, right],
            );
            scope
                .entries
                .push((join.table.effective_alias().to_string(), right_schema));
        }

        // WHERE.
        if let Some(pred) = &query.predicate {
            let predicate = self.lower_expr(pred, &scope, span)?;
            let selectivity = self.catalog.filter_selectivity(&predicate);
            node = self.plan.add(
                LogicalOp::Filter {
                    predicate,
                    selectivity,
                },
                vec![node],
            );
        }

        // Aggregation vs projection.
        let has_agg = query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }));
        let schema;
        if has_agg || !query.group_by.is_empty() {
            let mut group_idx = Vec::with_capacity(query.group_by.len());
            for g in &query.group_by {
                group_idx.push(scope.resolve(g, span)?);
            }
            let mut aggs = Vec::new();
            for item in &query.items {
                match item {
                    SelectItem::Agg {
                        func,
                        distinct,
                        column,
                        alias,
                    } => {
                        let input = match column {
                            Some(c) => Some(scope.resolve(c, span)?),
                            None => None,
                        };
                        let func = match (func.as_str(), distinct) {
                            ("COUNT", true) => AggFunc::CountDistinct,
                            ("COUNT", false) => AggFunc::Count,
                            ("SUM", _) => AggFunc::Sum,
                            ("MIN", _) => AggFunc::Min,
                            ("MAX", _) => AggFunc::Max,
                            ("AVG", _) => AggFunc::Avg,
                            (other, _) => {
                                return Err(LangError::bind(
                                    span,
                                    format!("unknown aggregate {other}"),
                                ));
                            }
                        };
                        aggs.push(AggExpr::new(func, input, alias.clone()));
                    }
                    SelectItem::Expr {
                        expr: Expr::Column(c),
                        ..
                    } => {
                        // Non-aggregate items must be grouping columns.
                        let idx = scope.resolve(c, span)?;
                        if !group_idx.contains(&idx) {
                            return Err(LangError::bind(
                                span,
                                format!("column {c} must appear in GROUP BY"),
                            ));
                        }
                    }
                    SelectItem::Wildcard => {
                        return Err(LangError::bind(span, "SELECT * cannot be aggregated"));
                    }
                    SelectItem::Expr { .. } => {
                        return Err(LangError::bind(
                            span,
                            "non-column expressions must appear inside aggregates",
                        ));
                    }
                }
            }
            // Group ratio: estimate from a fixed per-key reduction heuristic,
            // truth perturbed deterministically (recurring instances vary).
            let est_ratio = 0.1f64.powi(group_idx.len().max(1) as i32).max(1e-6);
            let h = stable_hash64(format!("agg|{group_idx:?}").as_bytes());
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            let group_ratio = if self.catalog.realistic_selectivity {
                DualStats::new(
                    (est_ratio * 0.25 * 10.0f64.powf(unit)).clamp(1e-9, 1.0),
                    est_ratio,
                )
            } else {
                DualStats::exact(est_ratio)
            };
            let input_schema = scope.schema();
            let mut cols: Vec<Column> = group_idx
                .iter()
                .map(|&i| input_schema.columns()[i].clone())
                .collect();
            cols.extend(
                aggs.iter()
                    .map(|a| Column::new(a.alias.clone(), scope_ir::schema::DataType::Float)),
            );
            schema = Schema::new(cols);
            node = self.plan.add(
                LogicalOp::Aggregate {
                    group_by: group_idx,
                    aggs,
                    group_ratio,
                },
                vec![node],
            );
        } else if query.items.len() == 1 && matches!(query.items[0], SelectItem::Wildcard) {
            schema = scope.schema();
        } else {
            let mut exprs = Vec::with_capacity(query.items.len());
            let mut cols = Vec::with_capacity(query.items.len());
            let input_schema = scope.schema();
            for item in &query.items {
                let SelectItem::Expr { expr, alias } = item else {
                    unreachable!("aggregates handled above")
                };
                let lowered = self.lower_expr(expr, &scope, span)?;
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.name.clone(),
                    _ => format!("col{}", cols.len()),
                });
                let ty = match &lowered {
                    ScalarExpr::Column(i) => input_schema.columns()[*i].ty,
                    _ => scope_ir::schema::DataType::Float,
                };
                cols.push(Column::new(name.clone(), ty));
                exprs.push((lowered, name));
            }
            schema = Schema::new(cols);
            node = self.plan.add(LogicalOp::Project { exprs }, vec![node]);
        }

        // ORDER BY resolves against the post-projection schema.
        if !query.order_by.is_empty() {
            let out_scope = Scope {
                entries: vec![(String::new(), schema.clone())],
            };
            let mut keys = Vec::with_capacity(query.order_by.len());
            for k in &query.order_by {
                let column = out_scope.resolve(&k.column, span)?;
                keys.push(SortKey {
                    column,
                    descending: k.descending,
                });
            }
            node = match query.top {
                Some(k) => self.plan.add(LogicalOp::Top { k, keys }, vec![node]),
                None => self.plan.add(LogicalOp::Sort { keys }, vec![node]),
            };
        }
        Ok((node, schema))
    }

    fn lower_expr(&self, expr: &Expr, scope: &Scope, span: Span) -> Result<ScalarExpr, LangError> {
        Ok(match expr {
            Expr::Column(c) => ScalarExpr::Column(scope.resolve(c, span)?),
            Expr::IntLit(v) => ScalarExpr::Literal(Value::Int(*v)),
            Expr::FloatLit(v) => ScalarExpr::Literal(Value::Float(*v)),
            Expr::StrLit(s) => ScalarExpr::Literal(Value::Str(s.clone())),
            Expr::Binary { op, left, right } => ScalarExpr::Binary {
                op: match op {
                    AstBinOp::Eq => BinOp::Eq,
                    AstBinOp::Ne => BinOp::Ne,
                    AstBinOp::Lt => BinOp::Lt,
                    AstBinOp::Le => BinOp::Le,
                    AstBinOp::Gt => BinOp::Gt,
                    AstBinOp::Ge => BinOp::Ge,
                    AstBinOp::And => BinOp::And,
                    AstBinOp::Or => BinOp::Or,
                    AstBinOp::Add => BinOp::Add,
                    AstBinOp::Sub => BinOp::Sub,
                    AstBinOp::Mul => BinOp::Mul,
                    AstBinOp::Div => BinOp::Div,
                },
                left: Box::new(self.lower_expr(left, scope, span)?),
                right: Box::new(self.lower_expr(right, scope, span)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::logical::LogicalOp;

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        big   = SELECT user, spend FROM sales WHERE spend > 100;
        j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
        OUTPUT big TO "out/big_sales";
    "#;

    #[test]
    fn binds_full_script_to_valid_dag() {
        let plan = bind_script(SCRIPT, &Catalog::default()).unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.outputs().len(), 2);
        assert_eq!(plan.count_tag("Extract"), 2);
        assert_eq!(plan.count_tag("Join"), 1);
        assert_eq!(plan.count_tag("Aggregate"), 1);
    }

    #[test]
    fn shared_subplans_are_shared_nodes() {
        let plan = bind_script(SCRIPT, &Catalog::default()).unwrap();
        // `big` feeds both the join and its own output: node appears in both
        // output trees.
        let t0 = plan.output_tree(plan.outputs()[0]);
        let t1 = plan.output_tree(plan.outputs()[1]);
        let shared: Vec<_> = t0.iter().filter(|n| t1.contains(n)).collect();
        assert!(!shared.is_empty(), "outputs must share the `big` sub-plan");
    }

    #[test]
    fn catalog_rows_flow_into_table_refs() {
        let mut catalog = Catalog::default();
        catalog.register(
            "store/sales",
            TableInfo {
                rows: DualStats::new(5000.0, 9000.0),
            },
        );
        let plan = bind_script(SCRIPT, &catalog).unwrap();
        let scan = plan
            .topo_order()
            .into_iter()
            .find_map(|id| match &plan.node(id).op {
                LogicalOp::Extract { table } if &*table.name == "store/sales" => {
                    Some(table.clone())
                }
                _ => None,
            })
            .unwrap();
        assert!((scan.rows.actual - 5000.0).abs() < 1e-9);
        assert!((scan.rows.estimated - 9000.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_dataset_is_bind_error() {
        let err = bind_script(r#"OUTPUT nothing TO "o";"#, &Catalog::default()).unwrap_err();
        assert!(err.to_string().contains("unknown dataset"), "{err}");
    }

    #[test]
    fn duplicate_dataset_is_bind_error() {
        let src = r#"
            a = EXTRACT x:int FROM "t";
            a = EXTRACT y:int FROM "t";
            OUTPUT a TO "o";
        "#;
        let err = bind_script(src, &Catalog::default()).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn ambiguous_column_is_bind_error() {
        let src = r#"
            a = EXTRACT x:int FROM "t1";
            b = EXTRACT x:int FROM "t2";
            j = SELECT x FROM a JOIN b ON a.x == b.x;
            OUTPUT j TO "o";
        "#;
        let err = bind_script(src, &Catalog::default()).unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn group_by_validation_rejects_ungrouped_columns() {
        let src = r#"
            a = EXTRACT x:int, y:int FROM "t";
            g = SELECT y, COUNT(*) AS n FROM a GROUP BY x;
            OUTPUT g TO "o";
        "#;
        let err = bind_script(src, &Catalog::default()).unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn filter_selectivity_diverges_deterministically() {
        let catalog = Catalog::default();
        let pred = ScalarExpr::binary(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit_int(5));
        let s1 = catalog.filter_selectivity(&pred);
        let s2 = catalog.filter_selectivity(&pred);
        assert_eq!(s1, s2, "determinism");
        assert!((s1.estimated - pred.heuristic_selectivity()).abs() < 1e-12);
        // Exact mode has no divergence.
        let exact = Catalog {
            realistic_selectivity: false,
            ..Catalog::default()
        };
        let s3 = exact.filter_selectivity(&pred);
        assert!((s3.actual - s3.estimated).abs() < 1e-12);
    }

    #[test]
    fn top_lowering_produces_top_operator() {
        let src = r#"
            a = EXTRACT x:int, y:int FROM "t";
            t = SELECT x, y FROM a ORDER BY y DESC;
            k = SELECT TOP 5 x, y FROM a ORDER BY x;
            OUTPUT t TO "o1";
            OUTPUT k TO "o2";
        "#;
        let plan = bind_script(src, &Catalog::default()).unwrap();
        assert_eq!(plan.count_tag("Sort"), 1);
        assert_eq!(plan.count_tag("Top"), 1);
    }

    #[test]
    fn union_requires_same_width() {
        let src = r#"
            a = EXTRACT x:int FROM "t1";
            b = EXTRACT x:int, y:int FROM "t2";
            u = UNION a, b;
            OUTPUT u TO "o";
        "#;
        let err = bind_script(src, &Catalog::default()).unwrap_err();
        assert!(err.to_string().contains("width mismatch"), "{err}");
    }

    #[test]
    fn process_gets_deterministic_cpu_factor() {
        let src = r#"
            a = EXTRACT x:int FROM "t";
            p = PROCESS a USING HeavyModel;
            OUTPUT p TO "o";
        "#;
        let plan1 = bind_script(src, &Catalog::default()).unwrap();
        let plan2 = bind_script(src, &Catalog::default()).unwrap();
        let factor = |plan: &LogicalPlan| {
            plan.topo_order()
                .into_iter()
                .find_map(|id| match &plan.node(id).op {
                    LogicalOp::Process { cpu_factor, .. } => Some(*cpu_factor),
                    _ => None,
                })
                .unwrap()
        };
        assert!((factor(&plan1) - factor(&plan2)).abs() < 1e-12);
        assert!(factor(&plan1) >= 1.0);
    }

    #[test]
    fn template_id_stable_across_literal_changes() {
        let make = |threshold: i64| {
            let src = format!(
                r#"
                a = EXTRACT x:int, y:int FROM "t";
                f = SELECT x, y FROM a WHERE x > {threshold};
                OUTPUT f TO "o";
            "#
            );
            bind_script(&src, &Catalog::default())
                .unwrap()
                .template_id()
        };
        assert_eq!(make(10), make(9999));
    }
}

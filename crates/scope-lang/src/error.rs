//! Error and source-position types shared by lexer, parser, and binder.

use std::fmt;

/// A (line, column) position in the script source, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub column: u32,
}

impl Span {
    #[must_use]
    pub fn new(line: u32, column: u32) -> Self {
        Self { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced by the language front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Unexpected character during lexing.
    Lex { span: Span, message: String },
    /// Parse error with expectation context.
    Parse { span: Span, message: String },
    /// Binder error: unknown names, duplicate definitions, type issues.
    Bind { span: Span, message: String },
}

impl LangError {
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            LangError::Lex { span, .. }
            | LangError::Parse { span, .. }
            | LangError::Bind { span, .. } => *span,
        }
    }

    pub(crate) fn parse(span: Span, message: impl Into<String>) -> Self {
        LangError::Parse {
            span,
            message: message.into(),
        }
    }

    pub(crate) fn bind(span: Span, message: impl Into<String>) -> Self {
        LangError::Bind {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            LangError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            LangError::Bind { span, message } => write!(f, "bind error at {span}: {message}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::parse(Span::new(3, 14), "expected FROM");
        assert_eq!(e.to_string(), "parse error at 3:14: expected FROM");
        assert_eq!(e.span(), Span::new(3, 14));
    }
}

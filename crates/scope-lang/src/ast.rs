//! Abstract syntax for the SCOPE-like script language. Unlike the IR,
//! expressions here reference columns *by name* (optionally qualified by the
//! dataset alias); the binder resolves names to positional indices.

use scope_ir::schema::DataType;

/// A whole script: an ordered list of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    pub statements: Vec<Statement>,
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `name = EXTRACT col:type, ... FROM "path" [USING Extractor];`
    Extract {
        name: String,
        columns: Vec<(String, DataType)>,
        path: String,
        extractor: Option<String>,
    },
    /// `name = SELECT ... ;`
    Select { name: String, query: SelectStmt },
    /// `name = PROCESS input USING Udf;`
    Process {
        name: String,
        input: String,
        udf: String,
    },
    /// `name = UNION a, b, c;`
    Union { name: String, inputs: Vec<String> },
    /// `name = WINDOW input PARTITION BY cols AGGREGATE SUM(x) AS s, ...;`
    Window {
        name: String,
        input: String,
        partition_by: Vec<ColumnRef>,
        funcs: Vec<WindowFunc>,
    },
    /// `OUTPUT name TO "path";`
    Output { input: String, path: String },
}

impl Statement {
    /// The dataset name this statement defines, if any.
    #[must_use]
    pub fn defines(&self) -> Option<&str> {
        match self {
            Statement::Extract { name, .. }
            | Statement::Select { name, .. }
            | Statement::Process { name, .. }
            | Statement::Union { name, .. }
            | Statement::Window { name, .. } => Some(name),
            Statement::Output { .. } => None,
        }
    }
}

/// One windowed aggregate, e.g. `SUM(v) AS total`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFunc {
    pub func: String,
    /// `None` means `COUNT(*)`.
    pub column: Option<ColumnRef>,
    pub alias: String,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT TOP k` limit, if present (requires ORDER BY).
    pub top: Option<u64>,
    pub items: Vec<SelectItem>,
    /// First (driving) input dataset.
    pub from: TableAlias,
    /// Zero or more `JOIN x ON a == b` clauses, applied left-to-right.
    pub joins: Vec<JoinClause>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<ColumnRef>,
    pub order_by: Vec<OrderKey>,
}

/// A dataset reference with an optional alias (`sales AS s`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableAlias {
    pub name: String,
    pub alias: Option<String>,
}

impl TableAlias {
    /// The name columns may be qualified with.
    #[must_use]
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `JOIN <table> ON <left-col> == <right-col> [AND ...]` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableAlias,
    /// Equi-join conditions: pairs of column references.
    pub on: Vec<(ColumnRef, ColumnRef)>,
}

/// Items of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// An aggregate call, e.g. `SUM(x) AS total`. `column == None` is
    /// `COUNT(*)`.
    Agg {
        func: String,
        distinct: bool,
        column: Option<ColumnRef>,
        alias: String,
    },
}

/// A possibly-qualified column name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColumnRef {
    #[must_use]
    pub fn bare(name: impl Into<String>) -> Self {
        Self {
            qualifier: None,
            name: name.into(),
        }
    }

    #[must_use]
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Scalar expressions (named columns).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    Binary {
        op: AstBinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub column: ColumnRef,
    pub descending: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_reports_bound_name() {
        let s = Statement::Union {
            name: "u".into(),
            inputs: vec!["a".into(), "b".into()],
        };
        assert_eq!(s.defines(), Some("u"));
        let o = Statement::Output {
            input: "u".into(),
            path: "p".into(),
        };
        assert_eq!(o.defines(), None);
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("x").to_string(), "x");
        assert_eq!(ColumnRef::qualified("t", "x").to_string(), "t.x");
    }

    #[test]
    fn effective_alias_prefers_explicit() {
        let t = TableAlias {
            name: "sales".into(),
            alias: Some("s".into()),
        };
        assert_eq!(t.effective_alias(), "s");
        let t2 = TableAlias {
            name: "sales".into(),
            alias: None,
        };
        assert_eq!(t2.effective_alias(), "sales");
    }
}

//! Tokenizer for the SCOPE-like script language.

use crate::error::{LangError, Span};

/// Tokens. Keywords are case-insensitive in source but normalized here.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords
    Extract,
    From,
    Using,
    Select,
    Top,
    Where,
    Group,
    By,
    Order,
    Asc,
    Desc,
    Join,
    On,
    As,
    And,
    Or,
    Output,
    To,
    Process,
    Union,
    Distinct,
    Window,
    Partition,
    Aggregate,
    // Literals / identifiers
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    // Punctuation
    Eq,   // =
    EqEq, // ==
    Ne,   // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Comma,
    Semicolon,
    Colon,
    Dot,
    LParen,
    RParen,
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    fn keyword(upper: &str) -> Option<Token> {
        Some(match upper {
            "EXTRACT" => Token::Extract,
            "FROM" => Token::From,
            "USING" => Token::Using,
            "SELECT" => Token::Select,
            "TOP" => Token::Top,
            "WHERE" => Token::Where,
            "GROUP" => Token::Group,
            "BY" => Token::By,
            "ORDER" => Token::Order,
            "ASC" => Token::Asc,
            "DESC" => Token::Desc,
            "JOIN" => Token::Join,
            "ON" => Token::On,
            "AS" => Token::As,
            "AND" => Token::And,
            "OR" => Token::Or,
            "OUTPUT" => Token::Output,
            "TO" => Token::To,
            "PROCESS" => Token::Process,
            "UNION" => Token::Union,
            "DISTINCT" => Token::Distinct,
            "WINDOW" => Token::Window,
            "PARTITION" => Token::Partition,
            "AGGREGATE" => Token::Aggregate,
            _ => return None,
        })
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub span: Span,
}

/// Tokenize a whole script. `//` comments run to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($tok:expr, $span:expr) => {
            out.push(Spanned {
                token: $tok,
                span: $span,
            })
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        let span = Span::new(line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                col += 1;
                let mut closed = false;
                while i < bytes.len() {
                    if bytes[i] == '"' {
                        closed = true;
                        i += 1;
                        col += 1;
                        break;
                    }
                    if bytes[i] == '\n' {
                        break;
                    }
                    s.push(bytes[i]);
                    i += 1;
                    col += 1;
                }
                if !closed {
                    return Err(LangError::Lex {
                        span,
                        message: "unterminated string".into(),
                    });
                }
                push!(Token::StrLit(s), span);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    let v = text.parse::<f64>().map_err(|_| LangError::Lex {
                        span,
                        message: format!("bad float literal {text}"),
                    })?;
                    push!(Token::FloatLit(v), span);
                } else {
                    let v = text.parse::<i64>().map_err(|_| LangError::Lex {
                        span,
                        message: format!("bad int literal {text}"),
                    })?;
                    push!(Token::IntLit(v), span);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let upper = text.to_ascii_uppercase();
                match Token::keyword(&upper) {
                    Some(kw) => push!(kw, span),
                    None => push!(Token::Ident(text), span),
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Token::EqEq, span);
                    i += 2;
                    col += 2;
                } else {
                    push!(Token::Eq, span);
                    i += 1;
                    col += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                push!(Token::Ne, span);
                i += 2;
                col += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Token::Le, span);
                    i += 2;
                    col += 2;
                } else {
                    push!(Token::Lt, span);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Token::Ge, span);
                    i += 2;
                    col += 2;
                } else {
                    push!(Token::Gt, span);
                    i += 1;
                    col += 1;
                }
            }
            '+' => {
                push!(Token::Plus, span);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(Token::Minus, span);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Token::Star, span);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(Token::Slash, span);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Token::Comma, span);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Token::Semicolon, span);
                i += 1;
                col += 1;
            }
            ':' => {
                push!(Token::Colon, span);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(Token::Dot, span);
                i += 1;
                col += 1;
            }
            '(' => {
                push!(Token::LParen, span);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Token::RParen, span);
                i += 1;
                col += 1;
            }
            other => {
                return Err(LangError::Lex {
                    span,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        span: Span::new(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("select SELECT SeLeCt"),
            vec![Token::Select, Token::Select, Token::Select, Token::Eof]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            toks("myData"),
            vec![Token::Ident("myData".into()), Token::Eof]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks(r#"42 3.5 "a/b""#),
            vec![
                Token::IntLit(42),
                Token::FloatLit(3.5),
                Token::StrLit("a/b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= == != < <= > >="),
            vec![
                Token::Eq,
                Token::EqEq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // hello world\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines() {
        let s = tokenize("a\n  b").unwrap();
        assert_eq!(s[0].span, Span::new(1, 1));
        assert_eq!(s[1].span, Span::new(2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("\"abc").unwrap_err();
        assert!(matches!(err, LangError::Lex { .. }));
    }

    #[test]
    fn unexpected_character_errors() {
        let err = tokenize("@").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }
}

//! # qo-advisor-repro
//!
//! A from-scratch Rust reproduction of *"Deploying a Steered Query Optimizer
//! in Production at Microsoft"* (SIGMOD 2022): the **QO-Advisor** system and
//! every substrate it runs on.
//!
//! The workspace is organized bottom-up:
//!
//! | Crate | Role |
//! |---|---|
//! | [`scope_ir`] | Plan IR: schemas, expressions, logical/physical DAGs, dual statistics |
//! | [`scope_lang`] | SCOPE-like script language (lexer/parser/binder) |
//! | [`scope_opt`] | Budgeted Cascades optimizer, 256-rule registry, signatures, spans, hints |
//! | [`scope_runtime`] | Distributed execution simulator with the cloud variance model |
//! | [`scope_workload`] | Recurring-template workload generator + the daily telemetry view |
//! | [`personalizer`] | Contextual-bandit decision service (Azure Personalizer substitute) |
//! | [`flighting`] | Pre-production A/B + A/A testing under budgets |
//! | [`sis`] | Versioned hint store (Stats & Insight Service substitute) |
//! | [`qo_advisor`] | The paper's contribution: the five-task steering pipeline |
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every table and
//! figure.
//!
//! ## A complete steering loop in a few lines
//!
//! ```no_run
//! use qo_advisor::{PipelineConfig, ProductionSim};
//! use scope_workload::WorkloadConfig;
//!
//! let mut sim = ProductionSim::new(WorkloadConfig::default(), PipelineConfig::default());
//! sim.bootstrap_validation_model(5, 24).expect("generated workloads compile");
//! for outcome in sim.run(10).expect("generated workloads compile") {
//!     println!(
//!         "day {:>2}: {:>3} jobs  {:>2} hints  {:>2} steered",
//!         outcome.report.day,
//!         outcome.report.jobs_total,
//!         outcome.report.hints_published,
//!         outcome.comparisons.len(),
//!     );
//! }
//! ```

pub use flighting;
pub use personalizer;
pub use qo_advisor;
pub use scope_ir;
pub use scope_lang;
pub use scope_opt;
pub use scope_runtime;
pub use scope_workload;
pub use sis;
